// Package fault is the deterministic fault-injection layer of the
// reproduction. The paper characterizes a prototype that ran below design
// speed precisely because real machines degrade — firmware limited the Chick
// to one node, the Gossamer clock ran at half its design rate, and the
// migration engine sustained 9 M instead of 16 M migrations/s — and the
// follow-up microbenchmark and NUMA-migration studies show that the
// interesting behaviour of migratory-thread systems appears under contention
// and imbalance, not in the clean case.
//
// A Plan describes degradation declaratively: per-nodelet core slowdown
// factors, NCDRAM channel throttling, fabric-link degradation or outage
// windows, and periodic migration-engine stall windows with a modelled
// retry-with-backoff path. Plans are fully deterministic: a given (plan,
// seed) resolves to the same per-nodelet assignment on every run, so figures
// produced under faults are bit-identical at any experiment parallelism.
//
// The hard contract with the machine layer, mirrored from the observer
// model: a nil or empty plan leaves every simulated time and counter
// byte-identical to an uninjected run. The machine only takes a fault code
// path when the resolved plan actually degrades the resource in question.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// Slowdown scales the service time of one resource class on a set of
// nodelets. The set is chosen three ways, in precedence order: an explicit
// Nodelets list, a seeded random pick of Count nodelets, or (both empty)
// every nodelet.
type Slowdown struct {
	// Factor multiplies the resource's service time; it must be >= 1
	// (faults degrade, they never accelerate).
	Factor float64
	// Count selects this many distinct nodelets with the plan's seeded
	// RNG; 0 with a nil Nodelets list means all nodelets.
	Count int
	// Nodelets, when non-empty, names the degraded nodelets explicitly.
	Nodelets []int
}

// LinkFault degrades one or more node cards' fabric egress links inside a
// time window. Factor > 1 stretches context transfer times; Factor == 0 is
// an outage — migrating threads that need the link retry with backoff until
// the window closes.
type LinkFault struct {
	// Factor multiplies the link's transfer time; 0 means outage.
	Factor float64
	// Start and End bound the window. End == 0 means "from Start onward"
	// and is only legal for Factor >= 1 (an open-ended outage would stall
	// threads forever).
	Start, End sim.Time
	// Nodes names the affected node cards; empty means all nodes.
	Nodes []int
}

// Stall describes periodic migration-engine stall windows on one or more
// node cards: the engine accepts no migrations for Duration at the start of
// every Period. Threads that attempt to migrate during a window back off and
// retry; the retries, backoff cycles, and stalled migrations are counted.
type Stall struct {
	Duration, Period sim.Time
	// Nodes names the affected node cards; empty means all nodes.
	Nodes []int
}

// Backoff is the retry policy of a thread whose migration finds the engine
// stalled or the link down: wait BaseCycles core cycles, double on each
// consecutive retry, cap at MaxCycles. The zero value selects
// DefaultBackoff.
type Backoff struct {
	BaseCycles int64
	MaxCycles  int64
}

// DefaultBackoff is the retry policy used when a plan leaves Backoff zero:
// 64-cycle initial wait doubling to a 4096-cycle cap (427 ns to 27 us at the
// prototype's 150 MHz clock).
var DefaultBackoff = Backoff{BaseCycles: 64, MaxCycles: 4096}

// Plan is one deterministic fault scenario. The zero value (and nil) injects
// nothing and is guaranteed byte-identical to an uninjected run.
type Plan struct {
	// Seed drives every random choice the plan makes (which nodelets a
	// Count-based Slowdown degrades). Zero behaves as seed 1.
	Seed uint64

	Cores    []Slowdown // Gossamer core issue-port slowdowns
	Channels []Slowdown // NCDRAM channel throttles
	Links    []LinkFault
	Stalls   []Stall
	Backoff  Backoff
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil ||
		len(p.Cores) == 0 && len(p.Channels) == 0 && len(p.Links) == 0 && len(p.Stalls) == 0
}

// Validate reports a descriptive error for an unusable plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range append(append([]Slowdown{}, p.Cores...), p.Channels...) {
		if s.Factor < 1 {
			return fmt.Errorf("fault: slowdown %d: factor %v < 1", i, s.Factor)
		}
		if s.Count < 0 {
			return fmt.Errorf("fault: slowdown %d: negative count", i)
		}
	}
	for i, l := range p.Links {
		if l.Factor < 0 {
			return fmt.Errorf("fault: link fault %d: negative factor", i)
		}
		if l.Factor < 1 && l.Factor != 0 {
			return fmt.Errorf("fault: link fault %d: factor %v in (0, 1) would accelerate the link", i, l.Factor)
		}
		if l.End != 0 && l.End <= l.Start {
			return fmt.Errorf("fault: link fault %d: window end %v <= start %v", i, l.End, l.Start)
		}
		if l.Factor == 0 && l.End == 0 {
			return fmt.Errorf("fault: link fault %d: open-ended outage would stall threads forever", i)
		}
	}
	for i, s := range p.Stalls {
		if s.Duration <= 0 || s.Period <= 0 {
			return fmt.Errorf("fault: stall %d: duration and period must be positive", i)
		}
		if s.Duration >= s.Period {
			return fmt.Errorf("fault: stall %d: duration %v >= period %v leaves no service window", i, s.Duration, s.Period)
		}
	}
	if p.Backoff.BaseCycles < 0 || p.Backoff.MaxCycles < 0 {
		return fmt.Errorf("fault: negative backoff cycles")
	}
	if p.Backoff.MaxCycles > 0 && p.Backoff.BaseCycles > p.Backoff.MaxCycles {
		return fmt.Errorf("fault: backoff base %d > max %d", p.Backoff.BaseCycles, p.Backoff.MaxCycles)
	}
	return nil
}

// Resolved is a plan bound to one machine shape: per-nodelet scale tables
// and per-node window lists the machine layer consults on its fault paths.
// A Resolved is read-only after construction and safe to share.
type Resolved struct {
	// CoreScale and ChannelScale hold one service-time multiplier per
	// nodelet; exactly 1 means healthy.
	CoreScale    []float64
	ChannelScale []float64

	links   [][]LinkFault // per node, windows sorted by Start
	stalls  [][]Stall     // per node
	backoff Backoff
}

// Resolve binds the plan to a machine with the given nodelet and node
// counts, performing every seeded choice. It returns nil for an empty plan
// (the caller's signal to stay on the exact fault-free code paths) and an
// error for an invalid one.
func (p *Plan) Resolve(nodelets, nodes int) (*Resolved, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nodelets <= 0 || nodes <= 0 {
		return nil, fmt.Errorf("fault: resolve onto %d nodelets / %d nodes", nodelets, nodes)
	}
	r := &Resolved{
		CoreScale:    ones(nodelets),
		ChannelScale: ones(nodelets),
		links:        make([][]LinkFault, nodes),
		stalls:       make([][]Stall, nodes),
		backoff:      p.Backoff,
	}
	if r.backoff == (Backoff{}) {
		r.backoff = DefaultBackoff
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	// Each rule draws from its own RNG stream (seed mixed with a per-rule
	// salt) so inserting a rule never re-deals the nodelets of another.
	for i, s := range p.Cores {
		applySlowdown(r.CoreScale, s, seed, uint64(i)*2+1)
	}
	for i, s := range p.Channels {
		applySlowdown(r.ChannelScale, s, seed, uint64(i)*2+2)
	}
	for _, l := range p.Links {
		for _, nd := range nodesOf(l.Nodes, nodes) {
			if nd < 0 || nd >= nodes {
				return nil, fmt.Errorf("fault: link fault names node %d of %d", nd, nodes)
			}
			r.links[nd] = append(r.links[nd], l)
		}
	}
	for nd := range r.links {
		sort.SliceStable(r.links[nd], func(a, b int) bool {
			return r.links[nd][a].Start < r.links[nd][b].Start
		})
	}
	for _, s := range p.Stalls {
		for _, nd := range nodesOf(s.Nodes, nodes) {
			if nd < 0 || nd >= nodes {
				return nil, fmt.Errorf("fault: stall names node %d of %d", nd, nodes)
			}
			r.stalls[nd] = append(r.stalls[nd], s)
		}
	}
	return r, nil
}

// ones returns a slice of n 1.0 values.
func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// nodesOf expands an empty node list to every node.
func nodesOf(nodes []int, n int) []int {
	if len(nodes) > 0 {
		return nodes
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// applySlowdown multiplies the scale of every nodelet the rule selects.
// Factors compose multiplicatively when rules overlap.
func applySlowdown(scale []float64, s Slowdown, seed, salt uint64) {
	switch {
	case len(s.Nodelets) > 0:
		for _, nl := range s.Nodelets {
			if nl >= 0 && nl < len(scale) {
				scale[nl] *= s.Factor
			}
		}
	case s.Count > 0:
		for _, nl := range pick(len(scale), s.Count, seed, salt) {
			scale[nl] *= s.Factor
		}
	default:
		for i := range scale {
			scale[i] *= s.Factor
		}
	}
}

// pick chooses count distinct values from [0, n) with a seeded
// Fisher-Yates, deterministically per (seed, salt).
func pick(n, count int, seed, salt uint64) []int {
	if count >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := workload.NewRNG(seed ^ (salt+1)*0x9E3779B97F4A7C15)
	perm := rng.Perm(n)
	return perm[:count]
}

// inWindow reports whether t falls inside the fault's window.
func (l LinkFault) inWindow(t sim.Time) bool {
	if t < l.Start {
		return false
	}
	return l.End == 0 || t < l.End
}

// stallWindow reports whether t falls inside a stall window and, if so, when
// the window closes.
func (s Stall) stallWindow(t sim.Time) (until sim.Time, stalled bool) {
	phase := t % s.Period
	if phase < s.Duration {
		return t - phase + s.Duration, true
	}
	return 0, false
}

// BlockedUntil reports whether a migration departing node nd at time t is
// blocked by a fault — a migration-engine stall window, or (when the
// migration crosses node cards) a link outage — and when the earliest moment
// the blockage could clear is. The thread does not snap to that moment; it
// retries with backoff, which is what the retry counters measure.
func (r *Resolved) BlockedUntil(nd int, crossing bool, t sim.Time) (sim.Time, bool) {
	var until sim.Time
	blocked := false
	for _, s := range r.stalls[nd] {
		if u, ok := s.stallWindow(t); ok && u > until {
			until, blocked = u, true
		}
	}
	if crossing {
		for _, l := range r.links[nd] {
			if l.Factor == 0 && l.inWindow(t) && l.End > until {
				until, blocked = l.End, true
			}
		}
	}
	return until, blocked
}

// LinkScale reports the transfer-time multiplier of node nd's fabric link at
// time t (1 when healthy). Outage windows are handled by BlockedUntil, not
// here.
func (r *Resolved) LinkScale(nd int, t sim.Time) float64 {
	f := 1.0
	for _, l := range r.links[nd] {
		if l.Factor > 1 && l.inWindow(t) {
			f *= l.Factor
		}
	}
	return f
}

// BackoffCycles reports the core cycles a thread waits on its attempt-th
// consecutive retry (attempt counts from 0): base doubling to the cap.
func (r *Resolved) BackoffCycles(attempt int) int64 {
	c := r.backoff.BaseCycles
	if c <= 0 {
		c = 1
	}
	for i := 0; i < attempt; i++ {
		c *= 2
		if r.backoff.MaxCycles > 0 && c >= r.backoff.MaxCycles {
			return r.backoff.MaxCycles
		}
	}
	if r.backoff.MaxCycles > 0 && c > r.backoff.MaxCycles {
		c = r.backoff.MaxCycles
	}
	return c
}

// Scale multiplies a service time by a fault factor, rounding to the nearest
// picosecond. Factor 1 returns t unchanged (bit-identical).
func Scale(t sim.Time, factor float64) sim.Time {
	if factor == 1 {
		return t
	}
	return sim.Time(float64(t)*factor + 0.5)
}

// Parse builds a plan from the compact CLI grammar used by the -faults
// flags: comma-separated directives, each key=value.
//
//	cores=F[@K]     core slowdown factor F on K seeded nodelets (default all)
//	chan=F[@K]      NCDRAM channel throttle
//	link=F[@S-E]    fabric link transfer times xF inside window [S, E)
//	link=off@S-E    fabric link outage (migrations retry with backoff)
//	migstall=D/P    migration engine stalls for D at the start of every P
//	backoff=B/M     retry backoff: B base cycles doubling to M max
//
// Durations use Go syntax ("10us", "1ms"); windows omit the window to mean
// the whole run (outages must name one). seed drives the @K selections.
//
//	-faults 'chan=4@2,migstall=10us/100us' -fault-seed 7
func Parse(spec string, seed uint64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		key, val, ok := strings.Cut(dir, "=")
		if !ok {
			return nil, fmt.Errorf("fault: directive %q is not key=value", dir)
		}
		var err error
		switch key {
		case "cores":
			err = parseSlowdown(&p.Cores, val)
		case "chan":
			err = parseSlowdown(&p.Channels, val)
		case "link":
			err = parseLink(&p.Links, val)
		case "migstall":
			err = parseStall(&p.Stalls, val)
		case "backoff":
			err = parseBackoff(&p.Backoff, val)
		default:
			err = fmt.Errorf("unknown directive %q (cores, chan, link, migstall, backoff)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", dir, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseSlowdown(dst *[]Slowdown, val string) error {
	factorStr, countStr, hasCount := strings.Cut(val, "@")
	f, err := strconv.ParseFloat(factorStr, 64)
	if err != nil {
		return fmt.Errorf("bad factor %q", factorStr)
	}
	s := Slowdown{Factor: f}
	if hasCount {
		k, err := strconv.Atoi(countStr)
		if err != nil || k <= 0 {
			return fmt.Errorf("bad nodelet count %q", countStr)
		}
		s.Count = k
	}
	*dst = append(*dst, s)
	return nil
}

func parseLink(dst *[]LinkFault, val string) error {
	factorStr, windowStr, hasWindow := strings.Cut(val, "@")
	l := LinkFault{}
	if factorStr == "off" {
		l.Factor = 0
	} else {
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil {
			return fmt.Errorf("bad factor %q", factorStr)
		}
		l.Factor = f
	}
	if hasWindow {
		startStr, endStr, ok := strings.Cut(windowStr, "-")
		if !ok {
			return fmt.Errorf("bad window %q (want start-end)", windowStr)
		}
		var err error
		if l.Start, err = parseDur(startStr); err != nil {
			return err
		}
		if l.End, err = parseDur(endStr); err != nil {
			return err
		}
	}
	*dst = append(*dst, l)
	return nil
}

func parseStall(dst *[]Stall, val string) error {
	durStr, periodStr, ok := strings.Cut(val, "/")
	if !ok {
		return fmt.Errorf("bad stall %q (want duration/period)", val)
	}
	s := Stall{}
	var err error
	if s.Duration, err = parseDur(durStr); err != nil {
		return err
	}
	if s.Period, err = parseDur(periodStr); err != nil {
		return err
	}
	*dst = append(*dst, s)
	return nil
}

func parseBackoff(dst *Backoff, val string) error {
	baseStr, maxStr, ok := strings.Cut(val, "/")
	if !ok {
		return fmt.Errorf("bad backoff %q (want base/max cycles)", val)
	}
	base, err := strconv.ParseInt(baseStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad base cycles %q", baseStr)
	}
	max, err := strconv.ParseInt(maxStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad max cycles %q", maxStr)
	}
	*dst = Backoff{BaseCycles: base, MaxCycles: max}
	return nil
}

// parseDur converts a Go duration literal into simulated time.
func parseDur(s string) (sim.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}
