package claims

import (
	"testing"

	"emuchick/internal/experiments"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("claim count = %d", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if c.ID == "" || c.Section == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("claim %q incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if _, err := ByID("stream-plateau"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown claim accepted")
	}
}

// TestAllClaimsPassQuick is the quick-scale scorecard: every paper claim
// must hold in the reproduction. The xeon-utilization claim needs several
// seconds (out-of-cache list); everything else is fast.
func TestAllClaimsPassQuick(t *testing.T) {
	opts := experiments.Options{Quick: true, Trials: 2}
	for _, c := range All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			v, err := c.Check(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Pass {
				t.Fatalf("claim failed: %s\n  paper: %s\n  measured: %s",
					c.ID, c.Statement, v.Detail)
			}
			t.Log(v.Detail)
		})
	}
}
