// Package claims turns the paper's checkable statements into an executable
// scorecard. Each Claim quotes (or closely paraphrases) a sentence from
// the paper, runs the relevant experiment at a configurable scale, and
// judges whether the reproduction exhibits the claimed behaviour. The
// cmd/emuvalidate binary prints the scorecard; EXPERIMENTS.md archives it.
package claims

import (
	"fmt"

	"emuchick/internal/cpukernels"
	"emuchick/internal/experiments"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// Verdict is the outcome of checking one claim.
type Verdict struct {
	Pass   bool
	Detail string // the measured numbers behind the verdict
}

// Claim is one checkable statement from the paper.
type Claim struct {
	ID        string
	Section   string // where the paper makes the statement
	Statement string // the paper's claim, quoted or closely paraphrased
	Check     func(experiments.Options) (Verdict, error)
}

// All returns the scorecard's claims in presentation order.
func All() []Claim {
	return []Claim{
		{
			ID:      "stream-plateau",
			Section: "IV-A / Fig. 4",
			Statement: "Performance scales up with thread count through 32 " +
				"threads and then plateaus.",
			Check: checkStreamPlateau,
		},
		{
			ID:      "spawn-parity",
			Section: "IV-A / Fig. 4",
			Statement: "There is not much difference between the two " +
				"approaches [serial_spawn and recursive_spawn].",
			Check: checkSpawnParity,
		},
		{
			ID:      "remote-spawn",
			Section: "IV-A / Fig. 5",
			Statement: "Remote spawns are essential to achieving maximum " +
				"bandwidth on Emu.",
			Check: checkRemoteSpawn,
		},
		{
			ID:      "node-stream-peak",
			Section: "IV-A",
			Statement: "The Emu Chick has a maximum STREAM bandwidth of " +
				"1.2 GB/s on a single node card.",
			Check: checkNodeStreamPeak,
		},
		{
			ID:      "chase-flat",
			Section: "IV-B / Fig. 6",
			Statement: "Performance on Emu remains mostly flat regardless " +
				"of block size.",
			Check: checkChaseFlat,
		},
		{
			ID:      "block1-dip",
			Section: "IV-B / Fig. 6",
			Statement: "At block size 1 performance is greatly reduced, but " +
				"recovers when even as few as four elements are accessed " +
				"between each migration.",
			Check: checkBlock1Dip,
		},
		{
			ID:      "xeon-sweet-spot",
			Section: "IV-B / Fig. 7",
			Statement: "On the Xeon the best performance is achieved with a " +
				"block size between 256 and 4096 elements; performance " +
				"declines beyond a DRAM page.",
			Check: checkXeonSweetSpot,
		},
		{
			ID:      "emu-utilization",
			Section: "IV-B / Fig. 8",
			Statement: "The Emu system uses 80% of available system " +
				"bandwidth in most cases and 50% in the worst cases.",
			Check: checkEmuUtilization,
		},
		{
			ID:      "xeon-utilization",
			Section: "IV-B / Fig. 8",
			Statement: "The Sandy Bridge Xeon uses less than 25% of peak " +
				"bandwidth in most cases.",
			Check: checkXeonUtilization,
		},
		{
			ID:      "spmv-layouts",
			Section: "IV-C / Fig. 9a",
			Statement: "Local and 1D layouts top out near 50 and 100 MB/s; " +
				"the 2D layout scales further (250 MB/s at n=100).",
			Check: checkSpMVLayouts,
		},
		{
			ID:      "grain-optima",
			Section: "IV-C",
			Statement: "A large grain (16,384) works best for CPU SpMV while " +
				"a much smaller grain (16) is most effective on the Emu.",
			Check: checkGrainOptima,
		},
		{
			ID:      "stream-validates",
			Section: "IV-D / Fig. 10",
			Statement: "The STREAM benchmark results match well between " +
				"hardware and the matched simulator.",
			Check: checkStreamValidates,
		},
		{
			ID:      "chase-gap",
			Section: "IV-D / Fig. 10",
			Statement: "The pointer chase results do not match in magnitude " +
				"(though the shape matches), because of the migration engines.",
			Check: checkChaseGap,
		},
		{
			ID:      "migration-rates",
			Section: "IV-D",
			Statement: "The simulator can perform 16 million migrations per " +
				"second; the hardware is limited to 9 million, and a single " +
				"migration takes approximately 1-2 us.",
			Check: checkMigrationRates,
		},
		{
			ID:      "fullspeed-scaling",
			Section: "IV-D / Fig. 11",
			Statement: "At full speed and 64 nodelets the system is still not " +
				"sensitive to spatial locality and bandwidth scales well up " +
				"to thousands of threads.",
			Check: checkFullSpeedScaling,
		},
	}
}

// ByID returns one claim.
func ByID(id string) (Claim, error) {
	for _, c := range All() {
		if c.ID == id {
			return c, nil
		}
	}
	return Claim{}, fmt.Errorf("claims: unknown claim %q", id)
}

// runFigures executes an experiment and indexes its figures by id.
func runFigures(id string, o experiments.Options) (map[string]*metrics.Figure, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	figs, err := e.RunResolved(o)
	if err != nil {
		return nil, err
	}
	out := map[string]*metrics.Figure{}
	for _, f := range figs {
		out[f.ID] = f
	}
	return out, nil
}

func mean(s *metrics.Series, x float64) (float64, error) {
	st, err := s.At(x)
	if err != nil {
		return 0, err
	}
	return st.Mean, nil
}

func verdict(pass bool, format string, args ...interface{}) (Verdict, error) {
	return Verdict{Pass: pass, Detail: fmt.Sprintf(format, args...)}, nil
}

func checkStreamPlateau(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig4", o)
	if err != nil {
		return Verdict{}, err
	}
	s := figs["fig4"].FindSeries("serial_spawn")
	lastX := s.Points[len(s.Points)-1].X
	first, err := mean(s, s.Points[0].X)
	if err != nil {
		return Verdict{}, err
	}
	last, err := mean(s, lastX)
	if err != nil {
		return Verdict{}, err
	}
	midX := s.Points[len(s.Points)/2].X
	mid, err := mean(s, midX)
	if err != nil {
		return Verdict{}, err
	}
	scaled := mid > 3*first
	plateaued := last < 2.6*mid
	return verdict(scaled && plateaued,
		"%.0f -> %.0f -> %.0f MB/s at %.0f/%.0f/%.0f threads (scaling %v, plateau %v)",
		first, mid, last, s.Points[0].X, midX, lastX, scaled, plateaued)
}

func checkSpawnParity(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig4", o)
	if err != nil {
		return Verdict{}, err
	}
	a := figs["fig4"].FindSeries("serial_spawn")
	b := figs["fig4"].FindSeries("recursive_spawn")
	worst := 1.0
	for _, p := range a.Points {
		other, err := mean(b, p.X)
		if err != nil {
			return Verdict{}, err
		}
		r := p.Stats.Mean / other
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return verdict(worst < 1.8, "largest serial/recursive ratio %.2fx", worst)
}

func checkRemoteSpawn(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig5", o)
	if err != nil {
		return Verdict{}, err
	}
	remote, local := 0.0, 0.0
	for _, s := range figs["fig5"].Series {
		m := s.MaxMean()
		if s.Name == "serial_remote_spawn" || s.Name == "recursive_remote_spawn" {
			if m > remote {
				remote = m
			}
		} else if m > local {
			local = m
		}
	}
	return verdict(remote > local,
		"remote-spawn peak %.0f MB/s vs local-spawn peak %.0f MB/s", remote, local)
}

func checkNodeStreamPeak(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("stream-anchors", o)
	if err != nil {
		return Verdict{}, err
	}
	m, err := mean(figs["stream-anchors"].FindSeries("measured"), 1)
	if err != nil {
		return Verdict{}, err
	}
	pass := m > 0.5 && m < 1.8 // GB/s band around the paper's 1.2
	if o.Quick {
		pass = m > 0.3 && m < 1.8 // quick runs pay startup costs
	}
	return verdict(pass, "measured %.2f GB/s vs paper 1.2 GB/s", m)
}

func checkChaseFlat(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig6", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["fig6"]
	s := fig.Series[len(fig.Series)-1] // highest thread count
	lo, hi := 0.0, 0.0
	for _, p := range s.Points {
		if p.X < 8 {
			continue // the dip region is claim block1-dip
		}
		if lo == 0 || p.Stats.Mean < lo {
			lo = p.Stats.Mean
		}
		if p.Stats.Mean > hi {
			hi = p.Stats.Mean
		}
	}
	return verdict(hi < 2*lo, "blocks >= 8 span %.0f..%.0f MB/s (%.2fx)", lo, hi, hi/lo)
}

func checkBlock1Dip(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig6", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["fig6"]
	s := fig.Series[len(fig.Series)-1]
	b1, err := mean(s, 1)
	if err != nil {
		return Verdict{}, err
	}
	b8, err := mean(s, 8)
	if err != nil {
		return Verdict{}, err
	}
	dip := b1 < b8/2
	recovered := b8 > 2.5*b1
	return verdict(dip && recovered, "block1 %.0f MB/s vs block8 %.0f MB/s", b1, b8)
}

func checkXeonSweetSpot(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig7", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["fig7"]
	s := fig.Series[len(fig.Series)-1]
	small, err := mean(s, s.Points[0].X)
	if err != nil {
		return Verdict{}, err
	}
	sweet, err := mean(s, 512)
	if err != nil {
		return Verdict{}, err
	}
	return verdict(sweet > small, "block %.0f: %.0f MB/s; block 512: %.0f MB/s",
		s.Points[0].X, small, sweet)
}

func checkEmuUtilization(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig8", o)
	if err != nil {
		return Verdict{}, err
	}
	emu := figs["fig8"].FindSeries("emu_chick_512t")
	best, worst := 0.0, 1.0
	for _, p := range emu.Points {
		if p.X < 4 {
			continue
		}
		if p.Stats.Mean > best {
			best = p.Stats.Mean
		}
		if p.Stats.Mean < worst {
			worst = p.Stats.Mean
		}
	}
	return verdict(best >= 0.65 && best <= 1.0 && worst >= 0.35,
		"utilization %.0f%%..%.0f%% over blocks >= 4 (paper: 80%%, worst 50%%)",
		worst*100, best*100)
}

func checkXeonUtilization(o experiments.Options) (Verdict, error) {
	// Needs an out-of-cache list, so it runs the kernel directly rather
	// than reusing the (possibly quick-scaled) fig8 sweep. The check uses
	// the small-block regime (the paper's motivating fragmented case);
	// EXPERIMENTS.md records that the model's mid-block utilization runs
	// higher than the paper's.
	elements := 1 << 21
	if o.Quick {
		elements = 1 << 20 // still several MiB; borderline but indicative
	}
	res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
		Elements: elements, BlockSize: 1, Mode: workload.FullBlockShuffle,
		Seed: 1, Threads: 32,
	})
	if err != nil {
		return Verdict{}, err
	}
	frac := res.BytesPerSec() / 51.2e9
	bound := 0.25
	if o.Quick {
		bound = 0.45 // partially cache-resident at quick scale
	}
	return verdict(frac < bound, "random chase at %.0f%% of nominal peak", frac*100)
}

func checkSpMVLayouts(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig9a", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["fig9a"]
	local := fig.FindSeries("local").MaxMean()
	d1 := fig.FindSeries("1d").MaxMean()
	d2 := fig.FindSeries("2d").MaxMean()
	return verdict(d2 > d1 && d1 > local,
		"local %.0f, 1d %.0f, 2d %.0f MB/s (paper ~50/100/250)", local, d1, d2)
}

func checkGrainOptima(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("ablation-grain", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["ablation-grain"]
	emu, cpu := fig.Series[0], fig.Series[1]
	emuSmall := emu.Points[0].Stats.Mean
	emuLarge := emu.Points[len(emu.Points)-1].Stats.Mean
	cpuSmall := cpu.Points[0].Stats.Mean
	cpuLarge := cpu.Points[len(cpu.Points)-1].Stats.Mean
	return verdict(emuSmall > emuLarge && cpuLarge > cpuSmall,
		"emu %.0f->%.0f MB/s, cpu %.0f->%.0f MB/s (small->large grain)",
		emuSmall, emuLarge, cpuSmall, cpuLarge)
}

func checkStreamValidates(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig10", o)
	if err != nil {
		return Verdict{}, err
	}
	hw := figs["fig10-stream"].FindSeries("hardware")
	sm := figs["fig10-stream"].FindSeries("simulator")
	worst := 1.0
	for _, p := range hw.Points {
		other, err := mean(sm, p.X)
		if err != nil {
			return Verdict{}, err
		}
		r := p.Stats.Mean / other
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return verdict(worst < 1.05, "largest hw/sim STREAM deviation %.1f%%", (worst-1)*100)
}

func checkChaseGap(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig10", o)
	if err != nil {
		return Verdict{}, err
	}
	hw := figs["fig10-chase"].FindSeries("hardware")
	sm := figs["fig10-chase"].FindSeries("simulator")
	h1, err := mean(hw, 1)
	if err != nil {
		return Verdict{}, err
	}
	s1, err := mean(sm, 1)
	if err != nil {
		return Verdict{}, err
	}
	gap := s1 / h1
	return verdict(gap > 1.3, "simulator/hardware at block 1 = %.2fx (engine ratio 16/9 = 1.78)", gap)
}

func checkMigrationRates(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("migration-anchors", o)
	if err != nil {
		return Verdict{}, err
	}
	m := figs["migration-anchors"].FindSeries("measured")
	hw, err := mean(m, 0)
	if err != nil {
		return Verdict{}, err
	}
	sm, err := mean(m, 1)
	if err != nil {
		return Verdict{}, err
	}
	lat, err := mean(m, 2)
	if err != nil {
		return Verdict{}, err
	}
	pass := hw > 8 && hw < 9.5 && sm > 14 && sm < 16.5 && lat >= 1 && lat <= 2
	return verdict(pass, "hw %.1f M/s, sim %.1f M/s, latency %.2f us", hw, sm, lat)
}

func checkFullSpeedScaling(o experiments.Options) (Verdict, error) {
	figs, err := runFigures("fig11", o)
	if err != nil {
		return Verdict{}, err
	}
	fig := figs["fig11"]
	lo := fig.Series[0]
	hi := fig.Series[len(fig.Series)-1]
	x := lo.Points[len(lo.Points)-1].X
	l, err := mean(lo, x)
	if err != nil {
		return Verdict{}, err
	}
	h, err := mean(hi, x)
	if err != nil {
		return Verdict{}, err
	}
	// Flatness of the top series across blocks, excluding the
	// migration-dip region below block 8 (the block-1 dip is its own
	// phenomenon in Fig. 6, present at full speed too).
	minB, maxB := h, h
	for _, p := range hi.Points {
		if p.X < 8 {
			continue
		}
		if p.Stats.Mean < minB {
			minB = p.Stats.Mean
		}
		if p.Stats.Mean > maxB {
			maxB = p.Stats.Mean
		}
	}
	return verdict(h > l && maxB < 2*minB,
		"%s %.0f MB/s -> %s %.0f MB/s at block %.0f; top series spans %.2fx over blocks >= 8",
		lo.Name, l, hi.Name, h, x, maxB/minB)
}
