package claims

import (
	"fmt"
	"strings"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/suite"
	"emuchick/internal/experiments"
)

// Lint returns the static-analysis claim: the repo's determinism, park-site,
// hot-path, no-handoff, seed-flow, fingerprint, and observer-guard contracts
// hold across the source tree — transitively, through the call-graph facts,
// not just where an annotation and an offending line share a body. It is not
// part of All() — it judges the source rather than the models — and
// emuvalidate appends it behind the -lint flag. The check runs the same
// analyzer suite as cmd/emulint, so it must execute inside the module (the
// loader shells out to the go tool).
func Lint() Claim {
	return Claim{
		ID:      "lint",
		Section: "repo contract",
		Statement: "The determinism, park-site, hot-path, no-handoff, " +
			"seed-flow, fingerprint, and observer-guard contracts hold " +
			"everywhere, transitively across the call graph (emulint is clean).",
		Check: checkLint,
	}
}

func checkLint(experiments.Options) (Verdict, error) {
	diags, err := suite.Lint(analysis.LoadConfig{}, "emuchick/...")
	if err != nil {
		return Verdict{}, err
	}
	if len(diags) == 0 {
		return Verdict{Pass: true, Detail: "emulint clean over emuchick/..."}, nil
	}
	const maxListed = 3
	var b strings.Builder
	fmt.Fprintf(&b, "%d finding(s): ", len(diags))
	for i, d := range diags {
		if i == maxListed {
			fmt.Fprintf(&b, "; +%d more (run make lint)", len(diags)-i)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(d.String())
	}
	return Verdict{Pass: false, Detail: b.String()}, nil
}
