// Package nodeterminism forbids the three ambient sources of run-to-run
// variation in the packages whose output must be bit-identical at any
// -parallel: wall-clock reads (time.Now and friends), ambiently-seeded
// math/rand, and iteration over Go maps, whose order is deliberately
// randomized by the runtime.
//
// The one tolerated map-iteration shape is the standard collect-then-sort
// idiom: a range body consisting solely of appending the key to a slice
// that is later passed to a sort function in the same enclosing function.
// Any other iteration needs an explicit
// //lint:allow nodeterminism <reason>.
//
// The wall-clock and ambient-rand rules are transitive: a function in a
// deterministic package must not call out-of-scope code that reads the
// wall clock or draws from the global rand source, however deep the
// offending site sits. Reachability comes from the funcfacts summaries,
// so the offender may live in any module package; callees inside the
// deterministic scope are exempt from the reachability report because
// their own sites are diagnosed directly where they occur.
package nodeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/funcfacts"
)

// sortFuncs are the sort/slices entry points that satisfy the
// collect-then-sort idiom when the collected key slice is their first
// argument.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// deterministicPackages is the contract's blast radius: the packages whose
// outputs feed figures, serialized artifacts, or traces.
var deterministicPackages = map[string]bool{
	"emuchick/internal/sim":         true,
	"emuchick/internal/kernels":     true,
	"emuchick/internal/metrics":     true,
	"emuchick/internal/report":      true,
	"emuchick/internal/experiments": true,
	"emuchick/internal/chaos":       true,
}

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbids wall-clock reads, ambiently-seeded math/rand, and unordered " +
		"map iteration in packages that must produce bit-identical results, " +
		"including through calls into out-of-scope code",
	Packages: func(path string) bool { return deterministicPackages[path] },
	Requires: []*analysis.Analyzer{funcfacts.Analyzer},
	Run:      run,
}

// ambientEffects are the callee-fact bits that violate determinism when
// reachable from a deterministic package.
var ambientEffects = []funcfacts.Effect{funcfacts.ReadsWallClock, funcfacts.SeedsRandAmbiently}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, enclosingFunc(f, n.Pos()), n)
			}
			return true
		})
	}
	checkReachability(pass)
	return nil, nil
}

// checkReachability reports calls from this package into out-of-scope
// code whose facts carry a wall-clock or ambient-rand effect. Same-scope
// callees are skipped: their sites are diagnosed where they occur, and
// repeating the report at every caller up the chain would bury the one
// actionable diagnostic.
func checkReachability(pass *analysis.Pass) {
	facts := pass.ResultOf[funcfacts.Analyzer].(*funcfacts.Result)
	for _, n := range facts.Graph.Nodes {
		for _, edge := range n.Edges {
			callee := edge.Callee
			if callee.Pkg() == nil || callee.Pkg() == pass.Pkg || deterministicPackages[callee.Pkg().Path()] {
				continue
			}
			cf := facts.Lookup(pass, callee)
			if cf == nil {
				continue
			}
			for _, e := range ambientEffects {
				if cf.Has[e] && funcfacts.Propagates(edge.Kind, e, cf.Cold) {
					pass.Reportf(edge.Site, "call to %s reaches ambient nondeterminism (%s): %s",
						funcfacts.FuncLabel(callee, pass.Pkg), e, cf.Witness[e])
				}
			}
		}
	}
}

// enclosingFunc returns the innermost function declaration or literal whose
// body spans pos, for the collect-then-sort scan.
func enclosingFunc(f *ast.File, pos token.Pos) ast.Node {
	var fn ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || n.Pos() > pos || n.End() <= pos {
			return false
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = n
		}
		return true
	})
	return fn
}

// pkgOf resolves the package an identifier names, or "" if it is not a
// package qualifier.
func pkgOf(pass *analysis.Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	switch pkgOf(pass, sel.X) {
	case "time":
		if funcfacts.WallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic packages must derive every value from simulated time or seeded inputs", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !funcfacts.SeededConstructors[sel.Sel.Name] && isFunc(pass, sel) {
			pass.Reportf(sel.Pos(), "rand.%s uses the ambient global source; construct an explicitly seeded *rand.Rand instead", sel.Sel.Name)
		}
	}
}

// isFunc reports whether the selector names a function or variable (as
// opposed to a type such as rand.Rand, which is fine to mention).
func isFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	switch obj.(type) {
	case *types.Func, *types.Var:
		return true
	}
	return false
}

func checkRange(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isCollectThenSort(pass, fn, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is randomized; collect and sort the keys first (the collect-then-sort idiom is recognized), or //lint:allow nodeterminism <reason>")
}

// isCollectThenSort recognizes
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Strings(keys)          // or sort.Ints/sort.Slice/slices.Sort*
//
// — the only map iteration whose effect is order-independent by
// construction. The body must be exactly one self-append of the range key,
// and the collected slice must flow into a sort call later in the same
// function.
func isCollectThenSort(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(asg.Lhs[0]) {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != key.Name {
		return false
	}
	slice := types.ExprString(asg.Lhs[0])
	sorted := false
	if fn == nil {
		return false
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(pass, sel.X)
		if (pkg == "sort" || pkg == "slices") && sortFuncs[sel.Sel.Name] &&
			types.ExprString(call.Args[0]) == slice {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}
