package nodeterminism

import (
	"testing"

	"emuchick/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/nodeterminism", Analyzer)
}

// TestTransitive drives ambient sources hidden behind an out-of-scope
// package: depclock reads the clock legally, and the reports land at the
// in-scope call sites that reach it.
func TestTransitive(t *testing.T) {
	analysistest.RunDirs(t, "../testdata/src/nodeterminism_trans", Analyzer, "depclock", "root")
}
