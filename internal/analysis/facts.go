package analysis

// Facts: the mechanism that makes the suite interprocedural. An analyzer
// declares the fact types it uses (Analyzer.FactTypes), attaches facts to
// functions of the package under analysis (Pass.ExportObjectFact), and
// reads facts off functions of imported packages (Pass.ImportObjectFact).
// The driver runs packages bottom-up over the import DAG, so by the time a
// package is analyzed every fact of every dependency exists.
//
// Mirroring golang.org/x/tools/go/analysis, facts cross package boundaries
// only in serialized form: when a package's analyzers finish, its newly
// exported facts are gob-encoded into one per-package blob, and downstream
// packages decode that blob rather than sharing memory. The round trip is
// not an affectation — it is what keeps the suite portable to the x/tools
// driver (where each `go vet` process sees only serialized facts of its
// dependencies) and it forces fact types to stay plain serializable data.
//
// One deliberate narrowing: facts attach to functions and methods only
// (*types.Func). The suite's facts are all per-function properties, and
// restricting the domain lets the object-path encoding be the obvious
// "Func" / "Type.Method" scheme instead of a full objectpath
// implementation. Widening to other object kinds means adopting
// x/tools/go/types/objectpath, which this package's layout anticipates.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is an analyzer-defined property attached to a function and
// visible to analyses of downstream packages. Implementations must be
// pointers to gob-serializable structs, and AFact is a marker method only.
type Fact interface {
	AFact()
}

// ObjectFact is one (function, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factKey identifies one fact slot: a function object and a concrete fact
// type (one fact of each type per object, exactly as in x/tools).
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore is the driver's shared fact table. Writes happen while a
// package's analyzers run (always single-threaded per package, and only
// for objects of that package); cross-package reads go through blobs, so
// the store itself is guarded by one mutex and sees little contention.
type factStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{facts: map[factKey]Fact{}}
}

func (s *factStore) set(obj types.Object, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[factKey{obj, reflect.TypeOf(f)}] = f
}

func (s *factStore) get(obj types.Object, typ reflect.Type) (Fact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.facts[factKey{obj, typ}]
	return f, ok
}

// ofPackage returns every fact attached to objects of pkg, sorted by
// object path then fact type name for deterministic encoding.
func (s *factStore) ofPackage(pkg *types.Package) []ObjectFact {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ObjectFact
	for k, f := range s.facts {
		if k.obj.Pkg() == pkg {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sortObjectFacts(out)
	return out
}

func sortObjectFacts(facts []ObjectFact) {
	sort.Slice(facts, func(i, j int) bool {
		pi, _ := objectPath(facts[i].Object)
		pj, _ := objectPath(facts[j].Object)
		if pi != pj {
			return pi < pj
		}
		return reflect.TypeOf(facts[i].Fact).String() < reflect.TypeOf(facts[j].Fact).String()
	})
}

// ExportObjectFact attaches fact to obj, which must be a function or
// method of the package under analysis. The fact becomes visible to
// analyses of downstream packages after this package completes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		panic("analysis: ExportObjectFact with nil object or fact")
	}
	if obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: exporting fact for %v, which belongs to %v, not the package under analysis (%v)",
			obj, obj.Pkg(), p.Pkg))
	}
	if _, ok := obj.(*types.Func); !ok {
		panic(fmt.Sprintf("analysis: facts attach to functions only; got %T (%v)", obj, obj))
	}
	p.export.set(obj, fact)
}

// ImportObjectFact copies into fact the fact of fact's concrete type
// previously attached to obj, reporting whether one exists. Facts of the
// package under analysis come from the in-progress export store; facts of
// imported packages come from their decoded blobs.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || fact == nil {
		panic("analysis: ImportObjectFact with nil object or fact")
	}
	typ := reflect.TypeOf(fact)
	var src Fact
	var ok bool
	if obj.Pkg() == p.Pkg {
		src, ok = p.export.get(obj, typ)
	} else {
		src, ok = p.imported.get(obj, typ)
	}
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// AllObjectFacts returns the facts exported so far for the package under
// analysis, in deterministic order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	return p.export.ofPackage(p.Pkg)
}

// --- serialization ---

// encodedFact is the wire form of one fact: the object's path within its
// package plus the gob-encoded fact value (as a registered interface).
type encodedFact struct {
	Path string
	Fact Fact
}

// EncodeFacts serializes facts (all belonging to one package) into one
// blob. It is exported for the driver and for tests; fact concrete types
// must have been registered via gob.Register (RunAnalyzers does this from
// Analyzer.FactTypes).
func EncodeFacts(facts []ObjectFact) ([]byte, error) {
	enc := make([]encodedFact, 0, len(facts))
	for _, of := range facts {
		path, err := objectPath(of.Object)
		if err != nil {
			return nil, err
		}
		enc = append(enc, encodedFact{Path: path, Fact: of.Fact})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts deserializes a blob produced by EncodeFacts, resolving
// object paths against pkg.
func DecodeFacts(pkg *types.Package, blob []byte) ([]ObjectFact, error) {
	var enc []encodedFact
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts of %s: %w", pkg.Path(), err)
	}
	out := make([]ObjectFact, 0, len(enc))
	for _, ef := range enc {
		obj, err := resolveObjectPath(pkg, ef.Path)
		if err != nil {
			return nil, err
		}
		out = append(out, ObjectFact{Object: obj, Fact: ef.Fact})
	}
	return out, nil
}

// objectPath encodes a function's identity within its package: "F" for a
// package-level function, "T.M" for a method of named type T (pointer and
// value receivers share the namespace), "I.M" for an interface method.
func objectPath(obj types.Object) (string, error) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", fmt.Errorf("analysis: no object path for %T (%v)", obj, obj)
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return fn.Name(), nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if iface, ok := t.(*types.Interface); ok {
			_ = iface
		}
		return "", fmt.Errorf("analysis: no object path for method %s on unnamed receiver %s", fn.Name(), recv.Type())
	}
	return named.Obj().Name() + "." + fn.Name(), nil
}

// resolveObjectPath is objectPath's inverse within pkg.
func resolveObjectPath(pkg *types.Package, path string) (types.Object, error) {
	scope := pkg.Scope()
	typeName, methodName, isMethod := strings.Cut(path, ".")
	if !isMethod {
		obj := scope.Lookup(path)
		if _, ok := obj.(*types.Func); !ok {
			return nil, fmt.Errorf("analysis: fact path %q does not resolve to a function in %s", path, pkg.Path())
		}
		return obj, nil
	}
	tn, ok := scope.Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("analysis: fact path %q: no type %s in %s", path, typeName, pkg.Path())
	}
	switch t := tn.Type().(type) {
	case *types.Named:
		if iface, ok := t.Underlying().(*types.Interface); ok {
			for i := 0; i < iface.NumExplicitMethods(); i++ {
				if m := iface.ExplicitMethod(i); m.Name() == methodName {
					return m, nil
				}
			}
		}
		for i := 0; i < t.NumMethods(); i++ {
			if m := t.Method(i); m.Name() == methodName {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("analysis: fact path %q: no method %s on %s in %s", path, methodName, typeName, pkg.Path())
}
