// Package analysis is a self-contained reimplementation of the core
// golang.org/x/tools/go/analysis surface, built only on the standard
// library's go/ast, go/types, and go/importer. The container this repo is
// developed in has no module proxy access, so the real x/tools framework
// cannot be vendored; the subset here — Analyzer, Pass, diagnostics,
// facts, analyzer dependencies (Requires/ResultOf), a package loader, and
// an analysistest-style harness — is API-compatible in spirit, and an
// analyzer written against it ports to x/tools by renaming imports.
//
// The driver is interprocedural: packages are analyzed bottom-up over the
// import DAG (independent packages in parallel, bounded by GOMAXPROCS),
// and analyzers attach serialized per-function facts to packages that
// downstream passes import — see facts.go. Within one package, analyzers
// run in dependency order (Analyzer.Requires) and exchange results
// through Pass.ResultOf.
//
// The suite built on top of it (see the subpackages and cmd/emulint)
// converts the repo's central determinism promises from test-time checks
// into compile-time guarantees:
//
//   - funcfacts: computes the per-function effect facts (allocates,
//     parks, spawns goroutines, reads the wall clock, seeds rand
//     ambiently, reaches dynamic calls) every transitive check consumes.
//   - nodeterminism: no wall-clock reads, no ambiently-seeded rand, no
//     unordered map iteration in result-producing packages — including
//     calls that reach an offender living in an out-of-scope package.
//   - parksite: every sim blocking point carries a park-site label, so
//     deadlock post-mortems never dump anonymous procs.
//   - hotpathalloc: functions annotated //emu:hotpath neither contain
//     allocating constructs nor call anything that transitively
//     allocates (cold paths opt out with //emu:cold).
//   - nohandoff: functions annotated //emu:nohandoff never park their
//     goroutine or spawn one per proc, through any call chain the
//     analyzer can follow; unprovable dynamic calls are diagnosed.
//   - seedflow: every RNG constructed in a result-producing package is
//     seeded from configuration (a parameter, an options/spec field, a
//     constant), never from ambient state.
//   - fingerprint: every experiments.Options field is explicitly
//     classified into or out of the checkpoint fingerprint.
//   - observerguard: machine-layer trace emits sit behind the
//     nil-observer guard.
//
// Findings are suppressed, one site at a time, with a reasoned marker
// comment: //lint:allow <analyzer> <reason>.
package analysis

import (
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Analyzer describes one static check. The zero scope (nil Packages) means
// the analyzer applies to every package the driver loads.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Packages, when non-nil, scopes the analyzer: the driver only runs it
	// on packages whose import path satisfies the predicate. analysistest
	// bypasses the scope and always runs the analyzer under test.
	// Analyzers that export facts or feed Requires edges must stay
	// unscoped, or downstream packages would see holes in the fact table.
	Packages func(path string) bool
	// Requires lists analyzers that must run first on the same package;
	// their results are available through Pass.ResultOf. The driver runs
	// the transitive closure automatically.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports or imports,
	// one zero value each; the driver registers them for serialization.
	FactTypes []Fact
	// Run performs the check, reporting findings through the pass and
	// returning the result value Requires-dependents read (or nil).
	Run func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ResultOf holds the results of this package's runs of the analyzers
	// named in Analyzer.Requires.
	ResultOf map[*Analyzer]any

	diags    *[]Diagnostic
	export   *factStore
	imported *factStore
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding, located in file:line:column form so drivers
// can print it without holding the FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding neutralized by a //lint:allow marker.
	// RunAnalyzers drops suppressed findings; Run keeps them (flagged) so
	// machine consumers see the full picture.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AnalyzerTime is the accumulated wall-clock cost of one analyzer across
// every package it ran on.
type AnalyzerTime struct {
	Name     string
	Duration time.Duration
	Packages int
}

// Results is the full outcome of a driver run.
type Results struct {
	// Diagnostics come back sorted by position, suppressed ones included
	// (marked). Malformed allow comments are reported under the
	// pseudo-analyzer "lintcomment".
	Diagnostics []Diagnostic
	// Timing reports per-analyzer cost, in suite order.
	Timing []AnalyzerTime
}

// Findings returns the unsuppressed diagnostics.
func (r *Results) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunAnalyzers applies every in-scope analyzer (plus the transitive
// closure of their Requires) to every package, bottom-up over the import
// DAG, and returns the surviving findings: diagnostics on a line carrying
// (or immediately following) a matching //lint:allow comment are dropped.
// Diagnostics come back sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings(), nil
}

// Run is RunAnalyzers with the full Results: suppressed diagnostics stay
// (marked), and per-analyzer timing is reported.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Results, error) {
	closure := requireClosure(analyzers)
	for _, a := range closure {
		for _, ft := range a.FactTypes {
			gob.Register(ft)
		}
	}
	d := &driver{
		closure:  closure,
		export:   newFactStore(),
		imported: newFactStore(),
		blobs:    map[*types.Package][]byte{},
		decoded:  map[*types.Package]bool{},
		perPkg:   make([]pkgOutcome, len(pkgs)),
		timings:  make([]timing, len(closure)),
	}
	if err := d.run(pkgs); err != nil {
		return nil, err
	}
	res := &Results{}
	for _, out := range d.perPkg {
		res.Diagnostics = append(res.Diagnostics, out.diags...)
	}
	sortDiagnostics(res.Diagnostics)
	for i, a := range closure {
		res.Timing = append(res.Timing, AnalyzerTime{
			Name:     a.Name,
			Duration: time.Duration(d.timings[i].ns),
			Packages: d.timings[i].pkgs,
		})
	}
	return res, nil
}

// requireClosure expands analyzers with their transitive Requires,
// dependencies first, preserving first-seen order among independents and
// rejecting duplicates of the analyzer list itself.
func requireClosure(analyzers []*Analyzer) []*Analyzer {
	var order []*Analyzer
	state := map[*Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		switch state[a] {
		case 1:
			panic(fmt.Sprintf("analysis: Requires cycle through %s", a.Name))
		case 2:
			return
		}
		state[a] = 1
		for _, dep := range a.Requires {
			visit(dep)
		}
		state[a] = 2
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order
}

type timing struct {
	ns   int64
	pkgs int
}

type pkgOutcome struct {
	diags []Diagnostic
}

type driver struct {
	closure []*Analyzer

	export   *factStore // facts exported by completed and in-flight packages
	imported *factStore // facts visible to downstream packages (via decode)

	mu      sync.Mutex
	blobs   map[*types.Package][]byte
	decoded map[*types.Package]bool
	err     error

	perPkg  []pkgOutcome
	timings []timing
	timeMu  sync.Mutex
}

// run drives every package, dependencies before dependents, independent
// packages concurrently up to GOMAXPROCS workers.
func (d *driver) run(pkgs []*Package) error {
	byTypes := map[*types.Package]int{}
	for i, pkg := range pkgs {
		byTypes[pkg.Types] = i
	}
	// deps[i] = indexes of pkgs that pkgs[i] imports (directly) within the
	// analyzed set; waiting[i] = how many are not yet analyzed.
	dependents := make([][]int, len(pkgs))
	waiting := make([]int, len(pkgs))
	for i, pkg := range pkgs {
		for _, imp := range pkg.Types.Imports() {
			if j, ok := byTypes[imp]; ok {
				dependents[j] = append(dependents[j], i)
				waiting[i]++
			}
		}
	}
	ready := make(chan int, len(pkgs))
	scheduled := 0
	for i := range pkgs {
		if waiting[i] == 0 {
			ready <- i
			scheduled++
		}
	}
	if scheduled == 0 && len(pkgs) > 0 {
		return fmt.Errorf("analysis: import cycle among analyzed packages")
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards waiting, scheduled, readyClosed
	readyClosed := false
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					err := d.analyzePackage(pkgs[i], i)
					mu.Lock()
					if err != nil {
						d.mu.Lock()
						if d.err == nil {
							d.err = err
							close(done)
						}
						d.mu.Unlock()
						mu.Unlock()
						return
					}
					for _, j := range dependents[i] {
						waiting[j]--
						if waiting[j] == 0 {
							ready <- j
							scheduled++
						}
					}
					if scheduled == len(pkgs) && !readyClosed {
						readyClosed = true
						close(ready)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if scheduled != len(pkgs) {
		return fmt.Errorf("analysis: import cycle among analyzed packages (%d of %d analyzed)", scheduled, len(pkgs))
	}
	return nil
}

// analyzePackage runs the analyzer closure over one package, then encodes
// its facts and publishes them (decoded) for dependents.
func (d *driver) analyzePackage(pkg *Package, idx int) error {
	var diags []Diagnostic
	allows := allowIndex{}
	for _, f := range pkg.Files {
		allows.collect(pkg.Fset, f, &diags)
	}
	results := map[*Analyzer]any{}
	for ai, a := range d.closure {
		if a.Packages != nil && !a.Packages(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  results,
			diags:     &diags,
			export:    d.export,
			imported:  d.imported,
		}
		start := time.Now()
		res, err := a.Run(pass)
		elapsed := time.Since(start)
		d.timeMu.Lock()
		d.timings[ai].ns += int64(elapsed)
		d.timings[ai].pkgs++
		d.timeMu.Unlock()
		if err != nil {
			return fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		results[a] = res
	}
	for i := range diags {
		if allows.allowed(diags[i]) {
			diags[i].Suppressed = true
		}
	}
	if pkg.DepOnly {
		// Analyzed only for its facts: the caller did not ask about this
		// package, so its diagnostics (all pre-existing, by induction on
		// clean full runs) are not reported.
		diags = nil
	}
	d.perPkg[idx] = pkgOutcome{diags: diags}

	// Publish facts: encode everything attached to this package, then
	// decode the blob into the read store dependents consult — the
	// serialization round trip runs on every package, every time.
	facts := d.export.ofPackage(pkg.Types)
	blob, err := EncodeFacts(facts)
	if err != nil {
		return fmt.Errorf("%s: %w", pkg.Path, err)
	}
	decodedFacts, err := DecodeFacts(pkg.Types, blob)
	if err != nil {
		return fmt.Errorf("%s: %w", pkg.Path, err)
	}
	d.mu.Lock()
	d.blobs[pkg.Types] = blob
	d.decoded[pkg.Types] = true
	d.mu.Unlock()
	for _, of := range decodedFacts {
		d.imported.set(of.Object, of.Fact)
	}
	return nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
