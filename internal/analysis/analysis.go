// Package analysis is a self-contained reimplementation of the core
// golang.org/x/tools/go/analysis surface, built only on the standard
// library's go/ast, go/types, and go/importer. The container this repo is
// developed in has no module proxy access, so the real x/tools framework
// cannot be vendored; the subset here — Analyzer, Pass, diagnostics, a
// package loader, and an analysistest-style harness — is API-compatible in
// spirit, and an analyzer written against it ports to x/tools by renaming
// imports.
//
// The suite built on top of it (see the subpackages and cmd/emulint)
// converts the repo's central determinism promises from test-time checks
// into compile-time guarantees:
//
//   - nodeterminism: no wall-clock reads, no ambiently-seeded rand, no
//     unordered map iteration in result-producing packages.
//   - parksite: every sim blocking point carries a park-site label, so
//     deadlock post-mortems never dump anonymous procs.
//   - hotpathalloc: functions annotated //emu:hotpath contain no
//     allocating constructs.
//   - nohandoff: functions annotated //emu:nohandoff never park their
//     goroutine or spawn one per proc — the continuation engine's
//     no-goroutine-handoff promise.
//   - fingerprint: every experiments.Options field is explicitly
//     classified into or out of the checkpoint fingerprint.
//   - observerguard: machine-layer trace emits sit behind the
//     nil-observer guard.
//
// Findings are suppressed, one site at a time, with a reasoned marker
// comment: //lint:allow <analyzer> <reason>.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. The zero scope (nil Packages) means
// the analyzer applies to every package the driver loads.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// comments. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Packages, when non-nil, scopes the analyzer: the driver only runs it
	// on packages whose import path satisfies the predicate. analysistest
	// bypasses the scope and always runs the analyzer under test.
	Packages func(path string) bool
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding, located in file:line:column form so drivers
// can print it without holding the FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzers applies every in-scope analyzer to every package and returns
// the surviving findings: diagnostics on a line carrying (or immediately
// following) a matching //lint:allow comment are dropped, and malformed
// allow comments are themselves reported under the pseudo-analyzer
// "lintcomment". Diagnostics come back sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allows := allowIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			allows.collect(pkg.Fset, f, &diags)
		}
		for _, a := range analyzers {
			if a.Packages != nil && !a.Packages(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if allows.allowed(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
