// Package nohandoff enforces the continuation engine's core promise: a
// function on the continuation hot path never hands control to another
// goroutine. The goroutine proc engine parks its goroutine at every
// blocking point and spawns one per threadlet; the continuation engine
// exists to eliminate exactly those handoffs, so a resumable Step path
// that quietly calls back into a parking or goroutine-spawning API would
// reintroduce per-proc goroutine cost while still claiming threadlet
// scale.
//
// Annotation grammar: a doc-comment line of the form
//
//	//emu:nohandoff [note]
//
// marks the function; everything after the marker is a free-form note.
//
// Inside an annotated function the analyzer flags:
//
//   - calls to the goroutine-parking proc methods Park, ParkReason,
//     WaitUntil, and Delay (the continuation forms are SleepUntil and
//     Suspend, which record a wake and return);
//   - calls to the blocking sync wrappers Acquire(p) and Wait(p) on a
//     parkable proc (the continuation forms are AcquireCont and
//     WaitCont);
//   - calls to the goroutine-spawning engine methods Go, GoAt, SpawnAt,
//     and LaunchAt (the continuation forms are SpawnContAt and
//     LaunchContAt).
//
// Like parksite, the rules key off method shape, not package identity: a
// parkable proc is any named type with both Park() and ParkReason(string)
// methods, and a continuation-aware engine is any type offering both
// SpawnAt and SpawnContAt — which lets the analyzer test itself on fakes.
package nohandoff

import (
	"go/ast"
	"go/types"
	"strings"

	"emuchick/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//emu:nohandoff"

// Analyzer is the nohandoff check.
var Analyzer = &analysis.Analyzer{
	Name: "nohandoff",
	Doc: "forbids goroutine handoffs (parking proc methods, blocking sync " +
		"wrappers, goroutine-spawning engine methods) in functions annotated " +
		"//emu:nohandoff — the continuation hot path must park state, not goroutines",
	Run: run,
}

// parking are the Proc methods that block the calling goroutine, mapped to
// their continuation-safe replacements.
var parking = map[string]string{
	"Park":       "Suspend(site)",
	"ParkReason": "Suspend(site)",
	"WaitUntil":  "SleepUntil(t)",
	"Delay":      "SleepUntil(p.Now()+d)",
}

// blocking are the sync wrappers that park the proc's goroutine when they
// cannot proceed, mapped to their park-state counterparts.
var blocking = map[string]string{
	"Acquire": "AcquireCont",
	"Wait":    "WaitCont",
}

// spawning are the Engine methods that start a goroutine per proc, mapped
// to their continuation counterparts.
var spawning = map[string]string{
	"Go":       "SpawnContAt",
	"GoAt":     "SpawnContAt",
	"SpawnAt":  "SpawnContAt",
	"LaunchAt": "LaunchContAt",
}

// Annotated reports whether the function declaration carries the marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

func check(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		recv := pass.TypeOf(sel.X)
		if recv == nil {
			return true
		}
		if cont, ok := parking[name]; ok && isParkable(recv) {
			pass.Reportf(call.Pos(), "no-handoff path: %s parks the calling goroutine; use %s and return parked", name, cont)
			return true
		}
		if cont, ok := blocking[name]; ok && len(call.Args) == 1 && isParkable(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "no-handoff path: %s(p) parks the proc's goroutine; use %s(p) and return parked", name, cont)
			return true
		}
		if cont, ok := spawning[name]; ok && isContEngine(recv) {
			pass.Reportf(call.Pos(), "no-handoff path: %s starts a goroutine per proc; use %s with a Stepper", name, cont)
		}
		return true
	})
}

// isParkable reports whether t (or *t) is a named type with both a Park()
// and a ParkReason(string) method — the shape of a simulated process.
func isParkable(t types.Type) bool {
	return hasMethod(t, "Park") && hasMethod(t, "ParkReason")
}

// isContEngine reports whether t offers both the goroutine and the
// continuation spawn surface — the shape of the event-loop engine.
func isContEngine(t types.Type) bool {
	return hasMethod(t, "SpawnAt") && hasMethod(t, "SpawnContAt")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
