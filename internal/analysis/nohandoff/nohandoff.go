// Package nohandoff enforces the continuation engine's core promise: a
// function on the continuation hot path never hands control to another
// goroutine. The goroutine proc engine parks its goroutine at every
// blocking point and spawns one per threadlet; the continuation engine
// exists to eliminate exactly those handoffs, so a resumable Step path
// that quietly calls back into a parking or goroutine-spawning API would
// reintroduce per-proc goroutine cost while still claiming threadlet
// scale.
//
// Annotation grammar: a doc-comment line of the form
//
//	//emu:nohandoff [note]
//
// marks the function; everything after the marker is a free-form note.
//
// Inside an annotated function the analyzer flags the local handoff
// sites (see funcfacts.ScanHandoff):
//
//   - calls to the goroutine-parking proc methods Park, ParkReason,
//     WaitUntil, and Delay (the continuation forms are SleepUntil and
//     Suspend, which record a wake and return);
//   - calls to the blocking sync wrappers Acquire(p) and Wait(p) on a
//     parkable proc (the continuation forms are AcquireCont and
//     WaitCont);
//   - calls to the goroutine-spawning engine methods Go, GoAt, SpawnAt,
//     and LaunchAt (the continuation forms are SpawnContAt and
//     LaunchContAt);
//   - the raw runtime forms: go statements, channel sends and receives,
//     select, ranging over a channel, sync.WaitGroup.Wait, time.Sleep.
//
// The rules key off method shape, not package identity: a parkable proc
// is any named type with both Park() and ParkReason(string) methods, and
// a continuation-aware engine is any type offering both SpawnAt and
// SpawnContAt — which lets the analyzer test itself on fakes.
//
// The check is transitive: an annotated function must not *reach* a
// parking or goroutine-spawning site through any chain the call graph
// can follow — static calls, function values, and CHA-resolved interface
// calls alike, across package boundaries via funcfacts. Calls the graph
// cannot resolve (func-typed parameters or fields, package-level
// function variables, interface calls with no visible implementation)
// are diagnosed too: a no-handoff guarantee that depends on an unseen
// callee is not a guarantee. Suppress a known-safe indirection with
// //lint:allow nohandoff <reason>.
package nohandoff

import (
	"go/ast"
	"go/token"
	"strings"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/funcfacts"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//emu:nohandoff"

// Analyzer is the nohandoff check.
var Analyzer = &analysis.Analyzer{
	Name: "nohandoff",
	Doc: "forbids goroutine handoffs (parking proc methods, blocking sync " +
		"wrappers, goroutine-spawning engine methods, raw channel operations) " +
		"in functions annotated //emu:nohandoff and in everything they reach — " +
		"the continuation hot path must park state, not goroutines",
	Requires: []*analysis.Analyzer{funcfacts.Analyzer},
	Run:      run,
}

// Annotated reports whether the function declaration carries the marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

// handoffEffects are the callee-fact bits that violate the contract when
// reachable from an annotated function.
var handoffEffects = []funcfacts.Effect{funcfacts.Parks, funcfacts.SpawnsGoroutine}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.ResultOf[funcfacts.Analyzer].(*funcfacts.Result)
	for _, n := range facts.Graph.Nodes {
		if !Annotated(n.Decl) {
			continue
		}
		funcfacts.ScanHandoff(pass.TypesInfo, n.Decl.Body, func(pos token.Pos, _ funcfacts.Effect, format string, args ...any) {
			pass.Reportf(pos, "no-handoff path: "+format, args...)
		})
		for _, d := range n.Dynamic {
			pass.Reportf(d.Site, "no-handoff path: %s — cannot prove the callee is handoff-free; use //lint:allow nohandoff <reason> if the target set is known safe", d.Desc)
		}
		for _, edge := range n.Edges {
			cf := facts.Lookup(pass, edge.Callee)
			if cf == nil {
				continue
			}
			for _, e := range handoffEffects {
				if cf.Has[e] && funcfacts.Propagates(edge.Kind, e, cf.Cold) {
					pass.Reportf(edge.Site, "no-handoff path: call to %s reaches a goroutine handoff: %s",
						funcfacts.FuncLabel(edge.Callee, pass.Pkg), cf.Witness[e])
				}
			}
			if cf.Has[funcfacts.DynamicCall] && funcfacts.Propagates(edge.Kind, funcfacts.DynamicCall, cf.Cold) {
				pass.Reportf(edge.Site, "no-handoff path: call to %s reaches a dynamic call the analysis cannot follow: %s",
					funcfacts.FuncLabel(edge.Callee, pass.Pkg), cf.Witness[funcfacts.DynamicCall])
			}
		}
	}
	return nil, nil
}
