package nohandoff

import (
	"testing"

	"emuchick/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/nohandoff", Analyzer)
}

// TestTransitive drives the planted handoffs (channel send, go
// statement, unresolvable indirection) living one package and two calls
// away from the //emu:nohandoff annotations.
func TestTransitive(t *testing.T) {
	analysistest.RunDirs(t, "../testdata/src/nohandoff_trans", Analyzer, "dep", "root")
}
