// Package analysistest runs one analyzer over a directory of Go sources and
// checks its diagnostics against // want comments embedded in those sources,
// mirroring golang.org/x/tools/go/analysis/analysistest for the stdlib-only
// framework in internal/analysis.
//
// Expectation grammar: a line comment of the form
//
//	// want `regexp` `regexp` ...
//
// (double-quoted Go strings also work) attaches one expectation per pattern
// to the comment's line. The harness fails the test when a diagnostic has no
// matching expectation on its line, and when an expectation matches no
// diagnostic. Suppression comments (//lint:allow) are honored exactly as in
// the real driver, so testdata can exercise them; the analyzer's package
// scope is ignored so testdata packages are always in scope.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"emuchick/internal/analysis"
)

// Run loads the package rooted at dir, applies a with its package scope
// bypassed, and reports every mismatch between diagnostics and // want
// expectations through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	unscoped := *a
	unscoped.Packages = nil
	check(t, []*analysis.Package{pkg}, &unscoped)
}

// RunDirs loads several directories under base as one package each — the
// import path of a package is its directory name, and later packages may
// import earlier ones by that name — then applies a and checks // want
// expectations across every file. This is the harness for transitive
// suites: dependency packages first, the package under test last.
//
// Scope handling differs from Run on the dependency packages: only the
// final package bypasses a's Packages scope. Dependencies are analyzed
// exactly as the real driver would treat out-of-scope code — their facts
// exist (Requires analyzers stay unscoped), their diagnostics don't —
// so a testdata dep can contain a planted violation whose only report is
// the transitive one at the package under test.
func RunDirs(t *testing.T, base string, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	if len(dirs) == 0 {
		t.Fatal("analysistest: RunDirs needs at least one dir")
	}
	fset := token.NewFileSet()
	imp := &localImporter{
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		local:    map[string]*types.Package{},
	}
	var pkgs []*analysis.Package
	for _, d := range dirs {
		pkg, err := loadInto(fset, imp, filepath.Join(base, d), d)
		if err != nil {
			t.Fatal(err)
		}
		imp.local[d] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	underTest := pkgs[len(pkgs)-1]
	scoped := *a
	inner := scoped.Packages
	scoped.Packages = func(path string) bool {
		return path == underTest.Path || (inner != nil && inner(path))
	}
	check(t, pkgs, &scoped)
}

// check runs a over pkgs and matches diagnostics against the packages'
// // want expectations.
func check(t *testing.T, pkgs []*analysis.Package, a *analysis.Analyzer) {
	t.Helper()
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// localImporter resolves the already-loaded testdata packages by their
// directory names and defers everything else (the standard library) to the
// source importer.
type localImporter struct {
	fallback types.ImporterFrom
	local    map[string]*types.Package
}

func (li *localImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := li.local[path]; ok {
		return pkg, nil
	}
	return li.fallback.ImportFrom(path, "", 0)
}

func (li *localImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := li.local[path]; ok {
		return pkg, nil
	}
	return li.fallback.ImportFrom(path, dir, mode)
}

// load parses and type-checks every .go file in dir as one package.
func load(dir string) (*analysis.Package, error) {
	fset := token.NewFileSet()
	imp, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return loadInto(fset, imp, dir, "")
}

// loadInto parses and type-checks dir as one package into a shared
// FileSet, resolving imports through imp. An empty path defaults to the
// package clause's name.
func loadInto(fset *token.FileSet, imp types.ImporterFrom, dir, path string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if path == "" {
		path = files[0].Name.Name
	}
	tpkg, info, err := analysis.Check(fset, imp, path, dir, files)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// expectation is one // want pattern attached to a source line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// collectWants extracts every // want expectation from the package's
// comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // want syntax lives in line comments only
				}
				text, ok = strings.CutPrefix(strings.TrimLeft(text, " \t"), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parsePatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns reads a sequence of space-separated Go string literals
// (backquoted or double-quoted).
func parsePatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return pats, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated `...` want pattern")
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		case '"':
			end := closingQuote(s)
			if end < 0 {
				return nil, fmt.Errorf(`unterminated "..." want pattern`)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", s[:end+1], err)
			}
			pats = append(pats, p)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be Go string literals; got %q", s)
		}
	}
}

// closingQuote returns the index of the double quote ending the literal that
// opens s, or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// claim marks the first unused expectation on d's line whose pattern matches
// d's message, reporting whether one was found.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}
