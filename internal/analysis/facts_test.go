package analysis

import (
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// markFact is a test fact carrying one payload string.
type markFact struct{ Note string }

func (*markFact) AFact() {}

// mapImporter resolves imports from a fixed set of already-checked
// packages, for multi-package driver tests without a GOPATH.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m[path], nil
}

func (m mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return m[path], nil
}

// checkSrc type-checks one in-memory file against the given importer.
func checkSrc(t *testing.T, fset *token.FileSet, imp types.ImporterFrom, path, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	pkg, info, err := Check(fset, imp, path, "", files)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}
}

// TestFactRoundTrip drives facts through the wire format: attach to a
// package-level function and to methods (pointer and value receivers, the
// "T.M" path form), encode, decode against the same type universe, and
// require identical object resolution and payloads.
func TestFactRoundTrip(t *testing.T) {
	gob.Register(&markFact{})
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

type T struct{}

func (T) Value() {}
func (*T) Pointer() {}
func F() {}
`)
	scope := pkg.Types.Scope()
	objs := []types.Object{
		scope.Lookup("F"),
		method(t, scope, "T", "Value"),
		method(t, scope, "T", "Pointer"),
	}
	var facts []ObjectFact
	for _, obj := range objs {
		facts = append(facts, ObjectFact{Object: obj, Fact: &markFact{Note: "fact on " + obj.Name()}})
	}
	blob, err := EncodeFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFacts(pkg.Types, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(facts) {
		t.Fatalf("decoded %d facts, want %d", len(decoded), len(facts))
	}
	for i, df := range decoded {
		if df.Object != facts[i].Object {
			t.Errorf("fact %d resolved to %v, want %v", i, df.Object, facts[i].Object)
		}
		got := df.Fact.(*markFact).Note
		want := facts[i].Fact.(*markFact).Note
		if got != want {
			t.Errorf("fact %d payload %q, want %q", i, got, want)
		}
	}
}

func method(t *testing.T, scope *types.Scope, typeName, methodName string) types.Object {
	t.Helper()
	named := scope.Lookup(typeName).Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == methodName {
			return m
		}
	}
	t.Fatalf("no method %s.%s", typeName, methodName)
	return nil
}

// TestFactPathRejectsNonFunctions pins the deliberate narrowing: facts
// attach to functions only.
func TestFactPathRejectsNonFunctions(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

var V int
`)
	_, err := EncodeFacts([]ObjectFact{{Object: pkg.Types.Scope().Lookup("V"), Fact: &markFact{}}})
	if err == nil || !strings.Contains(err.Error(), "no object path") {
		t.Fatalf("encoding a var fact: err = %v, want object-path error", err)
	}
}

// TestFactFlowAcrossPackages runs the real driver over a two-package DAG:
// an exporting analyzer marks functions of the dependency, and a
// consuming analyzer on the dependent package must see the fact — which
// has necessarily survived the encode/decode round trip the driver
// performs on every package boundary.
func TestFactFlowAcrossPackages(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	dep := checkSrc(t, fset, imp, "dep", `package dep

func Marked() {}
`)
	imp["dep"] = dep.Types
	top := checkSrc(t, fset, imp, "top", `package top

import "dep"

func Use() { dep.Marked() }
`)

	exporter := &Analyzer{
		Name:      "exporter",
		Doc:       "marks every package-level function",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			scope := pass.Pkg.Scope()
			for _, name := range scope.Names() {
				if fn, ok := scope.Lookup(name).(*types.Func); ok {
					pass.ExportObjectFact(fn, &markFact{Note: "exported in " + pass.Pkg.Path()})
				}
			}
			return nil, nil
		},
	}
	var sawNote string
	consumer := &Analyzer{
		Name:      "consumer",
		Doc:       "reads the dependency's fact",
		Requires:  []*Analyzer{exporter},
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			if pass.Pkg.Path() != "top" {
				return nil, nil
			}
			depPkg := pass.Pkg.Imports()[0]
			fn := depPkg.Scope().Lookup("Marked").(*types.Func)
			var f markFact
			if !pass.ImportObjectFact(fn, &f) {
				pass.Reportf(pass.Files[0].Pos(), "no fact on dep.Marked")
				return nil, nil
			}
			sawNote = f.Note
			return nil, nil
		},
	}
	diags, err := RunAnalyzers([]*Package{top, dep}, []*Analyzer{consumer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if sawNote != "exported in dep" {
		t.Fatalf("consumer read %q, want %q", sawNote, "exported in dep")
	}
}

// TestResultOf pins the within-package dependency mechanism: a Requires
// analyzer's return value is visible through Pass.ResultOf.
func TestResultOf(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

func F() {}
`)
	base := &Analyzer{
		Name: "base",
		Doc:  "returns a value",
		Run:  func(pass *Pass) (any, error) { return 42, nil },
	}
	var got any
	top := &Analyzer{
		Name:     "top",
		Doc:      "reads base's result",
		Requires: []*Analyzer{base},
		Run: func(pass *Pass) (any, error) {
			got = pass.ResultOf[base]
			return nil, nil
		},
	}
	if _, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{top}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("ResultOf[base] = %v, want 42", got)
	}
}
