// Package hotpathalloc enforces the allocation-free contract on functions
// annotated //emu:hotpath — the engine's event-queue operations, the
// proc park/wake paths, and the machine layer's nil-observer emit path.
// The repo's headline "zero-overhead when detached" claim is exactly the
// claim that these functions allocate nothing in steady state.
//
// Annotation grammar: a doc-comment line of the form
//
//	//emu:hotpath [note]
//
// marks the function; everything after the marker is a free-form note.
//
// Inside an annotated function the analyzer flags the local allocating
// constructs (see funcfacts.ScanAlloc): calls into fmt or errors, make,
// new, function literals, slice and map literals, string building,
// non-self append, and implicit interface boxing. Arguments of panic are
// exempt: a panicking hot path is already dead.
//
// The check is transitive: an annotated function must not *reach* an
// allocating function through any chain of static or function-value
// calls, in or out of the package — the callee facts computed by
// funcfacts carry allocation summaries across package boundaries. Two
// boundaries stop propagation deliberately:
//
//   - an interface call: dispatch is a contract boundary, and each
//     implementation that belongs on the hot path carries its own
//     //emu:hotpath annotation;
//   - a callee annotated //emu:cold: a declared failure exit or slow
//     path whose allocations are off the steady state.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"strings"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/funcfacts"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//emu:hotpath"

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbids allocating constructs (fmt, make/new, closures, non-self " +
		"append, slice/map literals, string building, interface boxing) in " +
		"functions annotated //emu:hotpath, and any call chain from such a " +
		"function to an allocating function",
	Requires: []*analysis.Analyzer{funcfacts.Analyzer},
	Run:      run,
}

// Annotated reports whether the function declaration carries the marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.ResultOf[funcfacts.Analyzer].(*funcfacts.Result)
	for _, n := range facts.Graph.Nodes {
		if !Annotated(n.Decl) {
			continue
		}
		funcfacts.ScanAlloc(pass.TypesInfo, n.Decl.Body, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, "hot path: "+format, args...)
		})
		for _, edge := range n.Edges {
			if !funcfacts.Propagates(edge.Kind, funcfacts.Allocates, false) {
				continue
			}
			cf := facts.Lookup(pass, edge.Callee)
			if cf == nil || !cf.Has[funcfacts.Allocates] || cf.Cold {
				continue
			}
			pass.Reportf(edge.Site, "hot path: call to %s reaches an allocation: %s",
				funcfacts.FuncLabel(edge.Callee, pass.Pkg), cf.Witness[funcfacts.Allocates])
		}
	}
	return nil, nil
}
