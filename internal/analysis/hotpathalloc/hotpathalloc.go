// Package hotpathalloc enforces the allocation-free contract on functions
// annotated //emu:hotpath — the engine's event-queue operations, the
// proc park/wake paths, and the machine layer's nil-observer emit path.
// The repo's headline "zero-overhead when detached" claim is exactly the
// claim that these functions allocate nothing in steady state.
//
// Annotation grammar: a doc-comment line of the form
//
//	//emu:hotpath [note]
//
// marks the function; everything after the marker is a free-form note.
//
// Inside an annotated function the analyzer flags:
//
//   - calls into fmt or errors (formatting allocates);
//   - make, new, and function literals (closures may escape);
//   - composite literals of slice or map type (struct literals passed by
//     value stay legal);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - append that is not a self-append (x = append(x, ...) reuses x's
//     storage in steady state; anything else is a fresh allocation per
//     growth);
//   - implicit boxing of a non-pointer value into an interface.
//
// Arguments of panic are exempt: a panicking hot path is already dead, so
// the diagnostic message may allocate freely.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"emuchick/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//emu:hotpath"

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbids allocating constructs (fmt, make/new, closures, non-self " +
		"append, slice/map literals, string building, interface boxing) in " +
		"functions annotated //emu:hotpath",
	Run: run,
}

// Annotated reports whether the function declaration carries the marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

// checker carries per-body state: appends already validated (or flagged)
// at their enclosing assignment, which checkCall must not double-report.
type checker struct {
	pass          *analysis.Pass
	appendHandled map[*ast.CallExpr]bool
}

// check walks one annotated body, skipping panic arguments.
func check(pass *analysis.Pass, body ast.Node) {
	c := &checker{pass: pass, appendHandled: map[*ast.CallExpr]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "panic") {
				return false // cold by construction
			}
			c.checkCall(n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path: function literal may escape and allocate")
			return false
		case *ast.CompositeLit:
			checkComposite(pass, n)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pass.TypeOf(n)) {
				pass.Reportf(n.Pos(), "hot path: string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		}
		return true
	})
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerLike types carry their payload in the interface data word, so
// converting one to an interface does not allocate.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *checker) checkCall(call *ast.CallExpr) {
	pass := c.pass
	// Conversions: string<->[]byte/[]rune copy and allocate.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := pass.TypeOf(call.Args[0])
			if from != nil && (isString(to) != isString(from)) && (isString(to) || isString(from)) {
				pass.Reportf(call.Pos(), "hot path: conversion between string and byte/rune slice allocates")
			}
		}
		return
	}
	if isBuiltin(pass, call.Fun, "make") || isBuiltin(pass, call.Fun, "new") {
		pass.Reportf(call.Pos(), "hot path: %s allocates", call.Fun.(*ast.Ident).Name)
		return
	}
	if isBuiltin(pass, call.Fun, "append") {
		// Non-self appends are caught at the assignment; an append anywhere
		// else (nested in a call, discarded) abandons the reuse guarantee.
		if !c.appendHandled[call] {
			pass.Reportf(call.Pos(), "hot path: append result is discarded or not reassigned to its base; only x = append(x, ...) reuses storage")
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "errors":
					pass.Reportf(call.Pos(), "hot path: %s.%s allocates", pn.Imported().Name(), sel.Sel.Name)
					return
				}
			}
		}
	}
	checkBoxing(pass, call)
}

// checkAssign validates the self-append shape: for each lhs_i = append(b,
// ...), b (or its slice-expression base, as in x = append(x[:0], ...))
// must be syntactically identical to lhs_i.
func (c *checker) checkAssign(asg *ast.AssignStmt) {
	pass := c.pass
	for i, rhs := range asg.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
			continue
		}
		c.appendHandled[call] = true
		if i >= len(asg.Lhs) {
			continue
		}
		base := call.Args[0]
		if se, ok := base.(*ast.SliceExpr); ok {
			base = se.X
		}
		if types.ExprString(asg.Lhs[i]) != types.ExprString(base) {
			pass.Reportf(call.Pos(), "hot path: append to %s assigned to %s allocates a fresh backing array; use the self-append form x = append(x, ...)",
				types.ExprString(base), types.ExprString(asg.Lhs[i]))
		}
	}
}

func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path: slice literal allocates")
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path: map literal allocates")
	}
}

// checkBoxing flags arguments whose static type is a non-pointer concrete
// type being passed where the callee expects an interface — each such call
// heap-allocates the boxed copy.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := funcSig(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || pointerLike(at) || isUntypedNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: %s is boxed into interface %s (allocates)", at, pt)
	}
}

func funcSig(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
