package hotpathalloc

import (
	"testing"

	"emuchick/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/hotpathalloc", Analyzer)
}

// TestTransitive drives the planted hotpath → helper → make violation:
// the allocation lives two calls away in another package, visible only
// through serialized facts. It also pins the two deliberate stops —
// //emu:cold callees and interface dispatch do not propagate Allocates.
func TestTransitive(t *testing.T) {
	analysistest.RunDirs(t, "../testdata/src/hotpathalloc_trans", Analyzer, "dep", "root")
}
