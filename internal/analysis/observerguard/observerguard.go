// Package observerguard enforces the zero-overhead half of the trace
// contract: the machine layer may deliver events and samples to a
// trace.Observer only from behind a nil check, so the detached fast path
// stays a single comparison and the engine never calls through a nil
// interface.
//
// A call x.Event(...) or x.Sample(...), where x's static type is a named
// interface called Observer, is accepted only when the enclosing function
// dominates it with a guard on the same expression:
//
//	if x == nil { return }        // early-out form
//	if x != nil { ... x.Event(e) ... }  // enclosing form
//
// (x may also be a local copy, as in obs := s.obs; if obs == nil { ... }.)
package observerguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"emuchick/internal/analysis"
)

// Analyzer is the observerguard check.
var Analyzer = &analysis.Analyzer{
	Name: "observerguard",
	Doc: "requires every Observer.Event/Sample delivery in the machine layer " +
		"to be dominated by a nil-observer guard on the same expression",
	Packages: func(path string) bool {
		return path == "emuchick/internal/machine" || path == "emuchick/internal/kernels"
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Event" && sel.Sel.Name != "Sample") {
			return true
		}
		if !isObserver(pass.TypeOf(sel.X)) {
			return true
		}
		if !guarded(pass, fd, types.ExprString(sel.X), call.Pos()) {
			pass.Reportf(call.Pos(), "%s.%s outside the nil-observer guard; the detached fast path must be a single nil check (guard with `if %s == nil { return }` or an enclosing `if %s != nil`)",
				types.ExprString(sel.X), sel.Sel.Name, types.ExprString(sel.X), types.ExprString(sel.X))
		}
		return true
	})
}

// isObserver reports whether t is a named interface type called Observer.
func isObserver(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return false
	}
	return named.Obj().Name() == "Observer"
}

// guarded reports whether some if statement in fd dominates pos with a nil
// check on expr: either `expr != nil` (possibly conjoined with &&) with pos
// inside its body, or `expr == nil` whose body returns, ending before pos.
func guarded(pass *analysis.Pass, fd *ast.FuncDecl, expr string, pos token.Pos) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, isIf := n.(*ast.IfStmt)
		if !isIf || ok {
			return !ok
		}
		if hasNilCheck(ifs.Cond, expr, token.NEQ) &&
			ifs.Body.Pos() <= pos && pos < ifs.Body.End() {
			ok = true
		}
		if hasNilCheck(ifs.Cond, expr, token.EQL) &&
			ifs.End() <= pos && bodyReturns(ifs.Body) {
			ok = true
		}
		return !ok
	})
	return ok
}

// hasNilCheck reports whether cond contains the conjunct `expr op nil`.
func hasNilCheck(cond ast.Expr, expr string, op token.Token) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return hasNilCheck(c.X, expr, op)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return hasNilCheck(c.X, expr, op) || hasNilCheck(c.Y, expr, op)
		}
		if c.Op != op {
			return false
		}
		x, y := types.ExprString(c.X), types.ExprString(c.Y)
		return (x == expr && y == "nil") || (x == "nil" && y == expr)
	}
	return false
}

// bodyReturns reports whether the block's last statement leaves the
// function or loop (return, panic, continue, break).
func bodyReturns(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
