package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// loadSrc type-checks one in-memory file as a package; no imports means the
// importer is never consulted.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	pkg, info, err := Check(fset, nil, "p", "", files)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: files, Types: pkg, Info: info}
}

// dummy flags every call to target().
var dummy = &Analyzer{
	Name: "dummy",
	Doc:  "flags every call to target",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "target" {
						pass.Reportf(call.Pos(), "target called")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuppression(t *testing.T) {
	const src = `package p

func target() {}

func use() {
	target() //lint:allow dummy same-line marker tolerates this call
	//lint:allow dummy line-above marker tolerates the next line
	target()
	target()
	//lint:allow dummy
	target()
}
`
	pkg := loadSrc(t, src)
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	// Lines 6 and 8 are suppressed. Line 9 is two lines below its nearest
	// marker, so it survives; line 10's marker has no reason and is itself a
	// finding that suppresses nothing, so line 11 survives too.
	want := []struct {
		analyzer string
		line     int
	}{
		{"dummy", 9},
		{"lintcomment", 10},
		{"dummy", 11},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(want))
	}
	for i, w := range want {
		if diags[i].Analyzer != w.analyzer || diags[i].Pos.Line != w.line {
			t.Errorf("diag %d = %s at line %d, want %s at line %d",
				i, diags[i].Analyzer, diags[i].Pos.Line, w.analyzer, w.line)
		}
	}
}

func TestPackageScope(t *testing.T) {
	const src = `package p

func target() {}

func use() { target() }
`
	pkg := loadSrc(t, src)
	scoped := *dummy
	scoped.Packages = func(path string) bool { return path == "somewhere/else" }
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&scoped})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope analyzer still reported: %v", diags)
	}
}
