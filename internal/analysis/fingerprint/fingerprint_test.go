package fingerprint

import (
	"testing"

	"emuchick/internal/analysis/analysistest"
)

// TestAnalyzer runs the check against a miniature options struct with its
// own classification table; the testdata deliberately contains one
// unclassified field, one stale table entry, one unread In field, and one
// Out field flowing into the fingerprint.
func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/fingerprint", NewAnalyzer(Config{
		Struct: "Options",
		Func:   "optionsFingerprint",
		Fields: map[string]Class{
			"Trials":   In,
			"Seed":     In,
			"Parallel": Out,
			"Stale":    Out,
		},
	}))
}
