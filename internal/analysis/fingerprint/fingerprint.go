// Package fingerprint guards the checkpoint-resume equivalence contract at
// its root: the options fingerprint. A checkpoint written under one
// workload shape must be refused by any other, and must be reusable under
// any option that merely changes how cells are driven. That soundness
// argument is only as good as the classification of every Options field as
// fingerprint-relevant (In) or fingerprint-exempt (Out) — so the
// classification is a single exported table, and the analyzer fails the
// build whenever the table, the Options struct, and the fingerprint
// function drift apart:
//
//   - every field of the options struct must appear in the table;
//   - every table entry must name a real field (no stale entries);
//   - the fingerprint function must read every In field and no Out field.
//
// Adding a new option therefore forces an explicit decision — and the
// runtime tests assert the behavioral half (In fields change the
// fingerprint, Out fields do not) from the same table.
package fingerprint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"emuchick/internal/analysis"
)

// Class says which side of the fingerprint a field is on.
type Class int

const (
	// In fields shape the workload: two runs differing in an In field must
	// never share a checkpoint.
	In Class = iota
	// Out fields only change how cells are driven (scheduling, tracing,
	// watchdogs); resume must work across any Out-field change.
	Out
)

func (c Class) String() string {
	if c == In {
		return "In"
	}
	return "Out"
}

// Fields is the classification of emuchick/internal/experiments.Options —
// the single source of truth shared by this analyzer and the equivalence
// tests.
var Fields = map[string]Class{
	// Workload-shaping: these decide which cells exist and what they compute.
	"Trials":    In,
	"Quick":     In,
	"Faults":    In,
	"FaultSeed": In,
	// Drive-side: results are identical across any change to these.
	"Parallel":       Out,
	"ProcEngine":     Out, // both proc engines produce byte-identical figures
	"Observer":       Out,
	"SampleInterval": Out,
	"Checkpoint":     Out, // the log's own path; recorded nowhere inside it
	"CellTimeout":    Out,
	"Retries":        Out,
	"ctx":            Out,
	"ckptFS":         Out, // which filesystem holds the WAL, not what it records
	"ckpt":           Out,
	"maxEvents":      Out,
	"ckptHook":       Out,
}

// Config parameterizes the analyzer so analysistest can run it against a
// miniature options struct with its own table.
type Config struct {
	// Struct is the options struct's type name.
	Struct string
	// Func is the fingerprint function's name.
	Func string
	// Fields is the classification table to enforce.
	Fields map[string]Class
}

// NewAnalyzer builds a fingerprint analyzer for one configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "fingerprint",
		Doc: "requires every field of the experiments options struct to be " +
			"classified In or Out of the checkpoint fingerprint, and the " +
			"fingerprint function to agree with the classification",
		Packages: func(path string) bool { return path == "emuchick/internal/experiments" },
		Run:      func(pass *analysis.Pass) (any, error) { return nil, run(pass, cfg) },
	}
}

// Analyzer enforces the real table against the real experiments package.
var Analyzer = NewAnalyzer(Config{
	Struct: "Options",
	Func:   "optionsFingerprint",
	Fields: Fields,
})

func run(pass *analysis.Pass, cfg Config) error {
	st, pos := findStruct(pass, cfg.Struct)
	if st == nil {
		return nil // struct not in this package; nothing to enforce
	}
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			fields[name.Name] = true
			if _, ok := cfg.Fields[name.Name]; !ok {
				pass.Reportf(name.Pos(), "field %s.%s is not classified in the checkpoint fingerprint table; add it as In (workload-shaping) or Out (drive-side) and cover it in the equivalence tests", cfg.Struct, name.Name)
			}
		}
	}
	stale := []string{}
	for name := range cfg.Fields {
		if !fields[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		pass.Reportf(pos, "fingerprint table entry %q matches no field of %s; delete the stale entry", name, cfg.Struct)
	}

	fn := findFunc(pass, cfg.Func)
	if fn == nil {
		pass.Reportf(pos, "fingerprint function %s not found in this package", cfg.Func)
		return nil
	}
	read := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isOptionsType(pass, sel.X, cfg.Struct) || !fields[sel.Sel.Name] {
			return true
		}
		read[sel.Sel.Name] = true
		if cfg.Fields[sel.Sel.Name] == Out {
			pass.Reportf(sel.Pos(), "Out field %s must not flow into the fingerprint: a resume across a %s change would be refused for no reason", sel.Sel.Name, sel.Sel.Name)
		}
		return true
	})
	missing := []string{}
	for name, class := range cfg.Fields {
		if class == In && fields[name] && !read[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(fn.Pos(), "In field %s is not folded into the fingerprint: a resume across a %s change would silently mix incompatible cells", name, name)
	}
	return nil
}

// findStruct locates the named struct type declaration.
func findStruct(pass *analysis.Pass, name string) (*ast.StructType, token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st, ts.Pos()
				}
			}
		}
	}
	return nil, 0
}

func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// isOptionsType reports whether e's static type is the options struct (or a
// pointer to it) declared in the package under analysis.
func isOptionsType(pass *analysis.Pass, e ast.Expr, structName string) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == structName && named.Obj().Pkg() == pass.Pkg
}
