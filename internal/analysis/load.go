package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// DepOnly marks a package loaded only because a requested package
	// depends on it: analyzers run on it (its facts feed the requested
	// packages' transitive checks) but its diagnostics are not reported.
	DepOnly bool
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Tests additionally compiles each package's in-package _test.go files
	// into the unit under analysis (external _test packages are skipped).
	Tests bool
	// Dir is the working directory for the go list invocation; "" means
	// the current directory. Patterns may be path patterns (./...) rooted
	// at Dir or import-path patterns (emuchick/...), which resolve from
	// anywhere inside the module.
	Dir string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir         string
	ImportPath  string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// Load enumerates the packages matching patterns via the go tool, parses
// their sources, and type-checks them from source (the "source" importer
// needs no pre-built export data, so the loader works in a hermetic
// build environment). All packages share one FileSet and one importer, so
// common dependencies are type-checked once.
//
// Module-internal dependencies of the matched packages are loaded too,
// marked DepOnly: the interprocedural checks are only sound when every
// dependency has contributed its facts, even on a partial pattern like
// ./internal/cilk. Standard-library dependencies are not analyzed; their
// effects are modeled at the call site by the local scanners.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	srcImp, _ := imp.(types.ImporterFrom)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		names := lp.GoFiles
		if cfg.Tests && !lp.DepOnly {
			names = append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		}
		if len(names) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, srcImp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path:    lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   pkg,
			Info:    info,
			DepOnly: lp.DepOnly,
		})
	}
	return pkgs, nil
}

// Check type-checks one parsed package with full expression, object, and
// selection information recorded. It is exported for analysistest, which
// loads testdata directories without going through the go tool.
func Check(fset *token.FileSet, imp types.ImporterFrom, path, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: dirImporter{imp, dir}}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

// dirImporter pins the source importer's vantage point to the package's own
// directory, so relative/internal import resolution matches the compiler's.
type dirImporter struct {
	imp types.ImporterFrom
	dir string
}

func (d dirImporter) Import(path string) (*types.Package, error) {
	return d.imp.ImportFrom(path, d.dir, 0)
}
