// Package suite assembles the repo's six contract analyzers into the
// multichecker that cmd/emulint, the Makefile lint target, and the
// emuvalidate -lint claim all share.
package suite

import (
	"emuchick/internal/analysis"
	"emuchick/internal/analysis/fingerprint"
	"emuchick/internal/analysis/hotpathalloc"
	"emuchick/internal/analysis/nodeterminism"
	"emuchick/internal/analysis/nohandoff"
	"emuchick/internal/analysis/observerguard"
	"emuchick/internal/analysis/parksite"
)

// Analyzers returns the full emulint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fingerprint.Analyzer,
		hotpathalloc.Analyzer,
		nodeterminism.Analyzer,
		nohandoff.Analyzer,
		observerguard.Analyzer,
		parksite.Analyzer,
	}
}

// Lint loads the packages matching patterns (every package of the module
// when none are given) and runs the suite, returning the surviving
// findings.
func Lint(cfg analysis.LoadConfig, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers(pkgs, Analyzers())
}
