// Package suite assembles the repo's seven contract analyzers into the
// multichecker that cmd/emulint, the Makefile lint target, and the
// emuvalidate -lint claim all share. The funcfacts analyzer rides along
// implicitly: the driver expands each analyzer's Requires closure, so
// every run computes the per-function effect facts the transitive checks
// consume.
package suite

import (
	"emuchick/internal/analysis"
	"emuchick/internal/analysis/fingerprint"
	"emuchick/internal/analysis/hotpathalloc"
	"emuchick/internal/analysis/nodeterminism"
	"emuchick/internal/analysis/nohandoff"
	"emuchick/internal/analysis/observerguard"
	"emuchick/internal/analysis/parksite"
	"emuchick/internal/analysis/seedflow"
)

// Analyzers returns the full emulint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fingerprint.Analyzer,
		hotpathalloc.Analyzer,
		nodeterminism.Analyzer,
		nohandoff.Analyzer,
		observerguard.Analyzer,
		parksite.Analyzer,
		seedflow.Analyzer,
	}
}

// Lint loads the packages matching patterns (every package of the module
// when none are given) and runs the suite, returning the surviving
// findings.
func Lint(cfg analysis.LoadConfig, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers(pkgs, Analyzers())
}

// Run loads the packages matching patterns and runs the suite, returning
// the full results — every diagnostic including suppressed ones, plus
// per-analyzer timing — for drivers that need more than the findings.
func Run(cfg analysis.LoadConfig, patterns ...string) (*analysis.Results, error) {
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, Analyzers())
}
