// Testdata for the parksite analyzer. Proc is a miniature of sim.Proc; the
// analyzer recognizes it by method shape (Park + ParkReason), so no import
// of the real sim package is needed.
package parksite

type Proc struct {
	site string
}

func (p *Proc) yield() {}

func (p *Proc) Park() { p.ParkReason("park") }

func (p *Proc) ParkReason(site string) {
	p.site = site
	p.yield()
}

func blockBare(p *Proc) {
	p.Park() // want `bare Park\(\) leaves an anonymous proc`
}

func blockLabeled(p *Proc) {
	p.ParkReason("queue-drain")
}

func blockEmptyLabel(p *Proc) {
	p.ParkReason("") // want `empty park-site label`
}

func blockGenericLabel(p *Proc) {
	p.ParkReason("park") // want `generic "park" label`
}

// blockDynamicLabel: non-constant labels (a semaphore's name) are always
// acceptable.
func blockDynamicLabel(p *Proc, name string) {
	p.ParkReason(name)
}

func rawYield(p *Proc) {
	p.yield() // want `yield without a prior park-site store`
}

func labeledYield(p *Proc, site string) {
	p.site = site
	p.yield()
}

func toleratedBare(p *Proc) {
	//lint:allow parksite exercising the unlabeled fallback on purpose
	p.Park()
}

// Car has Park but no ParkReason: not the parkable shape, out of scope.
type Car struct{}

func (c *Car) Park() {}

func garage(c *Car) {
	c.Park()
}
