// Package dep is the downstream layer of the transitive nohandoff suite:
// the parking, spawning, and dynamic sites live here, so only the
// serialized facts can carry them to the annotated package.
package dep

func noop() {}

// Send parks the calling goroutine on the channel.
func Send(ch chan int) { ch <- 1 }

// Spawn starts a goroutine.
func Spawn() { go noop() }

// hook is a package-level function variable: calls through it cannot be
// resolved statically.
var hook = noop

// Indirect makes a dynamic call.
func Indirect() { hook() }

// Clean is handoff-free.
func Clean(x int) int { return x * 2 }
