// Package root is the annotated layer of the transitive nohandoff suite:
// the //emu:nohandoff functions never touch a channel or goroutine
// locally — every violation flows in through helper calls, or hides
// behind an indirection the analysis refuses to vouch for.
package root

import "dep"

// The middle layer: unannotated, handoff only transitively.
func viaSend(ch chan int) { dep.Send(ch) }

func viaSpawn() { dep.Spawn() }

func viaIndirect() { dep.Indirect() }

//emu:nohandoff planted transitive violations
func Hot(ch chan int) int {
	viaSend(ch)   // want `no-handoff path: call to viaSend reaches a goroutine handoff: calls dep\.Send .* channel send can block`
	viaSpawn()    // want `no-handoff path: call to viaSpawn reaches a goroutine handoff: calls dep\.Spawn .* go statement starts a goroutine`
	viaIndirect() // want `no-handoff path: call to viaIndirect reaches a dynamic call the analysis cannot follow`
	return dep.Clean(2)
}

//emu:nohandoff a local dynamic call is diagnosed directly
func HotDyn(f func()) {
	f() // want `no-handoff path: call through func value f — cannot prove the callee is handoff-free`
}

//emu:nohandoff an allowed dynamic call is suppressed
func HotDynAllowed(f func()) {
	//lint:allow nohandoff testdata: the only caller passes a handoff-free thunk
	f()
}
