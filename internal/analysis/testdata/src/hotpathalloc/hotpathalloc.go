// Testdata for the hotpathalloc analyzer: every allocating construct the
// check knows, plus the shapes it must leave alone.
package hotpathalloc

import "fmt"

type buf struct {
	evs []int
}

func take(x interface{}) { _ = x }

//emu:hotpath
func (b *buf) push(v int) {
	b.evs = append(b.evs, v)
}

//emu:hotpath reslicing the base still reuses its storage
func (b *buf) reset(v int) {
	b.evs = append(b.evs[:0], v)
}

//emu:hotpath
func grow(b *buf, v int) []int {
	h := append(b.evs, v) // want `append to b\.evs assigned to h`
	return h
}

//emu:hotpath
func nested(b *buf, v int) int {
	return len(append(b.evs, v)) // want `append result is discarded or not reassigned`
}

//emu:hotpath
func format(v int) string {
	return fmt.Sprintf("%d", v) // want `fmt\.Sprintf allocates`
}

//emu:hotpath
func build(n int) []int {
	s := make([]int, n) // want `make allocates`
	return s
}

//emu:hotpath
func literal() []int {
	return []int{1, 2} // want `slice literal allocates`
}

//emu:hotpath
func table() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

// structLiteralsAreFine: a by-value struct literal lives on the stack.
type pair struct{ a, b int }

//emu:hotpath
func structLiteralsAreFine(a, b int) pair {
	return pair{a: a, b: b}
}

//emu:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//emu:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want `conversion between string and byte/rune slice`
}

//emu:hotpath
func closure() func() {
	return func() {} // want `function literal may escape`
}

//emu:hotpath
func box(v int) {
	take(v) // want `int is boxed into interface`
}

//emu:hotpath pointers ride in the interface data word unboxed
func boxPointer(b *buf) {
	take(b)
}

//emu:hotpath panic arguments are cold by construction
func guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative: %d", v))
	}
}

// unannotated functions allocate freely; only //emu:hotpath opts in.
func unannotated() []int {
	return []int{1}
}

//emu:hotpath the closure below is one-time setup, tolerated on purpose
func tolerated() func() {
	//lint:allow hotpathalloc one-time setup, not steady state
	return func() {}
}
