// Testdata for the seedflow analyzer: RNG seeds must derive from
// declared inputs — parameters, fields, constants — never from the wall
// clock, the ambient rand source, or package-level state.
package seedflow

import "time"

type rng struct{ s uint64 }

// NewRNG mirrors workload.NewRNG's shape; seedflow keys off the name.
func NewRNG(seed uint64) *rng { return &rng{s: seed} }

type options struct{ Seed uint64 }

var processSeed uint64

// clockSeed is a tainted helper: its fact carries reads-wall-clock.
func clockSeed() uint64 { return uint64(time.Now().UnixNano()) }

// The derivation idioms that must stay legal.
func goodParam(seed uint64, salt int) *rng {
	return NewRNG(seed ^ (uint64(salt)+1)*0x9E3779B97F4A7C15)
}

func goodField(o options) *rng { return NewRNG(o.Seed) }

func goodConst() *rng { return NewRNG(42) }

func goodLocal(o options) *rng {
	derived := o.Seed * 31
	return NewRNG(derived + 7)
}

// The violations.
func badClock() *rng {
	return NewRNG(uint64(time.Now().UnixNano())) // want `seed expression: time\.Now reads the wall clock; derive seeds from the spec/options seed parameter`
}

func badHelper() *rng {
	return NewRNG(clockSeed()) // want `seed expression calls clockSeed, which reaches ambient nondeterminism \(reads-wall-clock\)`
}

func badGlobal() *rng {
	return NewRNG(processSeed) // want `seed derives from package-level variable processSeed`
}

func allowed() *rng {
	//lint:allow seedflow testdata: interactive tool, reproducibility not required
	return NewRNG(processSeed)
}
