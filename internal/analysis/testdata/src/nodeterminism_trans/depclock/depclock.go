// Package depclock is the out-of-scope layer of the transitive
// nodeterminism suite: it reads the wall clock and draws from the ambient
// rand source, legally — it is not a deterministic package. The
// violation is calling it from one.
package depclock

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the ambient global source.
func Draw() int { return rand.Int() }

// Pure is deterministic.
func Pure(x int) int { return x + 3 }

// DeepStamp hides the clock behind one more call.
func DeepStamp() int64 { return Stamp() }
