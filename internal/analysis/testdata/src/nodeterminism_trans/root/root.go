// Package root is the in-scope layer of the transitive nodeterminism
// suite: no ambient source appears in this package, but calls into
// depclock reach them — exactly the hole the per-package analyzer had.
package root

import "depclock"

func Result(x int) int64 {
	v := depclock.Pure(x) // in-scope call to a pure function: clean
	s := depclock.Stamp() // want `call to depclock\.Stamp reaches ambient nondeterminism \(reads-wall-clock\): time\.Now reads the wall clock`
	return int64(v) + s
}

func Mixed() int {
	return depclock.Draw() // want `call to depclock\.Draw reaches ambient nondeterminism \(seeds-rand-ambiently\): rand\.Int uses the ambient global source`
}

func Deep() int64 {
	return depclock.DeepStamp() // want `call to depclock\.DeepStamp reaches ambient nondeterminism \(reads-wall-clock\): calls Stamp .* time\.Now reads the wall clock`
}

func Allowed() int64 {
	//lint:allow nodeterminism testdata: wall-clock use is confined to log metadata
	return depclock.Stamp()
}
