// Testdata for the observerguard analyzer. Observer is a miniature of
// trace.Observer; the analyzer keys on the interface's name, so no import
// of the real trace package is needed.
package observerguard

type Observer interface {
	Event(e int)
	Sample(s int)
}

type system struct {
	obs Observer
}

func (s *system) emitGuardedEarlyOut(e int) {
	obs := s.obs
	if obs == nil {
		return
	}
	obs.Event(e)
}

func (s *system) emitGuardedEnclosing(e int) {
	if s.obs != nil {
		s.obs.Event(e)
	}
}

func (s *system) emitConjoinedGuard(e int, sampling bool) {
	if sampling && s.obs != nil {
		s.obs.Sample(e)
	}
}

func (s *system) emitUnguarded(e int) {
	s.obs.Event(e) // want `s\.obs\.Event outside the nil-observer guard`
}

// emitWrongExpr guards one expression and calls through another; the guard
// must dominate the same expression it checks.
func (s *system) emitWrongExpr(e int) {
	obs := s.obs
	if s.obs == nil {
		return
	}
	obs.Sample(e) // want `obs\.Sample outside the nil-observer guard`
}

func (s *system) tolerated(e int) {
	//lint:allow observerguard caller has already checked attachment
	s.obs.Event(e)
}

// logger is a concrete type whose Event method is not an Observer delivery.
type logger struct{}

func (logger) Event(e int) {}

func free(l logger, e int) {
	l.Event(e)
}
