// Testdata for the fingerprint analyzer, checked against a miniature table
// (see fingerprint_test.go): Trials and Seed are In, Parallel is Out, the
// table carries a stale "Stale" entry, and the struct carries an
// unclassified Extra field.
package fingerprint

import "fmt"

type Options struct { // want `fingerprint table entry "Stale" matches no field`
	Trials   int
	Seed     int64
	Parallel int
	Extra    bool // want `field Options\.Extra is not classified`
}

func optionsFingerprint(o Options) string { // want `In field Seed is not folded into the fingerprint`
	return fmt.Sprintf("trials=%d;par=%d", o.Trials, o.Parallel) // want `Out field Parallel must not flow into the fingerprint`
}
