// Testdata for the nodeterminism analyzer: wall-clock reads, ambient rand,
// and map iteration, each with a legal counterpart.
package nodeterminism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

// durationsAreFine: the time.Duration type and its constants never touch the
// clock.
func durationsAreFine(n int) time.Duration {
	return time.Duration(n) * time.Microsecond
}

func ambientRand() int {
	return rand.Intn(6) // want `rand\.Intn uses the ambient global source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// mentioningTheTypeIsFine: naming rand.Rand reads nothing from the global
// source.
func mentioningTheTypeIsFine(r *rand.Rand) int {
	return r.Intn(6)
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectWithoutSort collects keys but never orders them, so the idiom does
// not apply.
func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

func tolerated(m map[string]bool) int {
	n := 0
	//lint:allow nodeterminism commutative count, order-free by construction
	for range m {
		n++
	}
	return n
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
