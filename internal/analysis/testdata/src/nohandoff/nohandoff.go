// Testdata for the nohandoff analyzer. Proc and Engine are miniatures of
// sim.Proc and sim.Engine; the analyzer recognizes them by method shape
// (Park + ParkReason, SpawnAt + SpawnContAt), so no import of the real sim
// package is needed.
package nohandoff

type Time int64

type Proc struct {
	site string
}

func (p *Proc) Park()                  {}
func (p *Proc) ParkReason(s string)    {}
func (p *Proc) WaitUntil(t Time)       {}
func (p *Proc) Delay(d Time)           {}
func (p *Proc) SleepUntil(t Time) bool { return true }
func (p *Proc) Suspend(site string)    {}
func (p *Proc) Now() Time              { return 0 }

type Stepper interface {
	StepProc(p *Proc)
}

type Engine struct{}

func (e *Engine) SpawnAt(t Time, name string, fn func(*Proc)) *Proc  { return nil }
func (e *Engine) LaunchAt(t Time, name string, fn func(*Proc)) *Proc { return nil }
func (e *Engine) Go(name string, fn func(*Proc)) *Proc               { return nil }
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc     { return nil }
func (e *Engine) SpawnContAt(t Time, name string, s Stepper) *Proc   { return nil }
func (e *Engine) LaunchContAt(t Time, name string, s Stepper) *Proc  { return nil }

type Semaphore struct{}

func (s *Semaphore) Acquire(p *Proc)          {}
func (s *Semaphore) AcquireCont(p *Proc) bool { return false }
func (s *Semaphore) Release()                 {}

type Join struct{}

func (j *Join) Wait(p *Proc)          {}
func (j *Join) WaitCont(p *Proc) bool { return false }

//emu:nohandoff resumable step path
func stepParks(p *Proc) {
	p.Park()            // want `no-handoff path: Park parks the calling goroutine`
	p.ParkReason("sem") // want `no-handoff path: ParkReason parks the calling goroutine`
	p.WaitUntil(10)     // want `no-handoff path: WaitUntil parks the calling goroutine`
	p.Delay(5)          // want `no-handoff path: Delay parks the calling goroutine`
}

//emu:nohandoff
func stepBlocks(p *Proc, s *Semaphore, j *Join) {
	s.Acquire(p) // want `no-handoff path: Acquire\(p\) parks the proc's goroutine`
	j.Wait(p)    // want `no-handoff path: Wait\(p\) parks the proc's goroutine`
}

//emu:nohandoff
func stepSpawns(e *Engine, fn func(*Proc)) {
	e.Go("w", fn)          // want `no-handoff path: Go starts a goroutine per proc`
	e.GoAt(1, "w", fn)     // want `no-handoff path: GoAt starts a goroutine per proc`
	e.SpawnAt(1, "w", fn)  // want `no-handoff path: SpawnAt starts a goroutine per proc`
	e.LaunchAt(1, "w", fn) // want `no-handoff path: LaunchAt starts a goroutine per proc`
}

//emu:nohandoff the continuation forms are all legal
func stepClean(p *Proc, s *Semaphore, j *Join, e *Engine, st Stepper) {
	if p.SleepUntil(10) {
		return
	}
	p.Suspend("sem")
	if s.AcquireCont(p) {
		return
	}
	if j.WaitCont(p) {
		return
	}
	s.Release()
	e.SpawnContAt(1, "w", st)
	e.LaunchContAt(1, "w", st)
}

// unannotated functions may hand off freely: the goroutine engine and the
// compatibility shim live on exactly these calls.
func goroutineBody(p *Proc, s *Semaphore, e *Engine, fn func(*Proc)) {
	p.Park()
	s.Acquire(p)
	e.SpawnAt(1, "w", fn)
}

// onlySpawnAt has the goroutine half of the engine shape but no
// continuation surface: not a continuation-aware engine, out of scope.
type onlySpawnAt struct{}

func (o *onlySpawnAt) SpawnAt(t Time, name string, fn func(*Proc)) {}

//emu:nohandoff
func stepOtherSpawner(o *onlySpawnAt, fn func(*Proc)) {
	o.SpawnAt(1, "w", fn)
}

// Car has Park but no ParkReason: not the parkable shape, out of scope.
type Car struct{}

func (c *Car) Park() {}

//emu:nohandoff
func garage(c *Car) {
	c.Park()
}

//emu:nohandoff suppression works one site at a time
func stepTolerated(p *Proc) {
	//lint:allow nohandoff teardown path, runs once per failed run
	p.Park()
}
