// Package dep is the downstream layer of the transitive hotpathalloc
// suite: the allocating functions live here, out of the annotated
// package, so the only way to diagnose them is through serialized facts.
package dep

// Make allocates — the planted violation the transitive check must see
// through two layers of calls.
func Make() []int { return make([]int, 4) }

// Clean is allocation-free.
func Clean(x int) int { return x + 1 }

// ColdAlloc allocates but declares itself off the steady state; its
// allocation must not propagate to callers.
//
//emu:cold testdata cold path
func ColdAlloc() []int { return make([]int, 8) }
