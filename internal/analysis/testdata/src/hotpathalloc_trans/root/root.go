// Package root is the annotated layer of the transitive hotpathalloc
// suite: the //emu:hotpath functions here never allocate locally — every
// violation flows in through helper calls.
package root

import "dep"

// helper is the middle layer: unannotated, allocates only transitively.
func helper() []int { return dep.Make() }

// coldWrapper reaches an allocation only through a declared cold path.
func coldWrapper() []int { return dep.ColdAlloc() }

// maker exercises the interface boundary: dispatch does not propagate
// Allocates, because each hot implementation carries its own annotation.
type maker interface{ New() []int }

type boxed struct{}

func (boxed) New() []int { return make([]int, 1) }

//emu:hotpath planted transitive violation: reaches make through helper
func Hot(m maker) int {
	helper()      // want `hot path: call to helper reaches an allocation: calls dep\.Make .* make allocates`
	coldWrapper() // cold stops Allocates: no finding
	m.New()       // interface edge: no finding
	return dep.Clean(1)
}
