package seedflow

import (
	"testing"

	"emuchick/internal/analysis/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/seedflow", Analyzer)
}
