// Package seedflow enforces the repo's seed-discipline contract: every
// RNG constructed in a result-producing package must be seeded from the
// experiment's declared inputs — a jobspec.Spec seed, an
// experiments.Options field, a fault-plan seed parameter — never from
// ambient state. Determinism of the figures rests on the chain from the
// spec seed down to every workload.NewRNG call; one time.Now().UnixNano()
// or package-level counter in a seed expression silently breaks
// run-to-run reproducibility while every individual draw still looks
// seeded.
//
// For each RNG construction site (workload.NewRNG and the seed-taking
// math/rand constructors NewSource and NewPCG) the analyzer checks the
// seed expression:
//
//   - it must not read the wall clock or the ambient math/rand source,
//     neither directly (time.Now().UnixNano() as a seed) nor through a
//     helper whose funcfacts summary carries the effect;
//   - every identifier in it must resolve to a parameter, local, field,
//     or constant — never to a package-level variable, mutable ambient
//     state that would couple runs to process history.
//
// Derivation idioms stay legal by construction: salting a parameter
// (seed ^ (salt+1)*0x9E3779B97F4A7C15), mixing config fields
// (cfg.Seed), splitting one seed across workers. Suppress a deliberate
// exception with //lint:allow seedflow <reason>.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/callgraph"
	"emuchick/internal/analysis/funcfacts"
)

// Analyzer is the seedflow check.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "requires every RNG seed in result-producing packages to derive " +
		"from declared inputs (spec/options/plan seed parameters, fields, " +
		"constants), rejecting wall-clock reads, ambient rand, and " +
		"package-level variables in seed expressions",
	Packages: inScope,
	Requires: []*analysis.Analyzer{funcfacts.Analyzer},
	Run:      run,
}

// inScope covers the result-producing tree: everything under internal/
// except the analysis machinery itself (whose testdata deliberately
// contains violations).
func inScope(path string) bool {
	return strings.HasPrefix(path, "emuchick/internal/") &&
		!strings.HasPrefix(path, "emuchick/internal/analysis")
}

// ambientEffects taint a seed expression when any call in it reaches one.
var ambientEffects = []funcfacts.Effect{funcfacts.ReadsWallClock, funcfacts.SeedsRandAmbiently}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.ResultOf[funcfacts.Analyzer].(*funcfacts.Result)
	for _, n := range facts.Graph.Nodes {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, seed := range seedArgs(pass, call) {
				checkSeed(pass, facts, n, seed)
			}
			return true
		})
	}
	return nil, nil
}

// seedArgs returns the seed-bearing arguments of call if it constructs an
// RNG: every argument of a function named NewRNG, and every argument of
// math/rand's NewSource and NewPCG.
func seedArgs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	switch fn := callee(pass, call).(type) {
	case *types.Func:
		switch {
		case fn.Name() == "NewRNG":
			return call.Args
		case fn.Pkg() != nil &&
			(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
			(fn.Name() == "NewSource" || fn.Name() == "NewPCG"):
			return call.Args
		}
	}
	return nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// checkSeed validates one seed expression inside function node n.
func checkSeed(pass *analysis.Pass, facts *funcfacts.Result, n *callgraph.Node, seed ast.Expr) {
	// Direct ambient sites inside the expression (time.Now().UnixNano(),
	// rand.Uint64(), ...).
	funcfacts.ScanAmbient(pass.TypesInfo, seed, func(pos token.Pos, _ funcfacts.Effect, format string, args ...any) {
		pass.Reportf(pos, "seed expression: "+format+"; derive seeds from the spec/options seed parameter", args...)
	})
	// Helper calls inside the expression whose summaries carry an ambient
	// effect. The enclosing function's call-graph edges are keyed by site,
	// so the edges inside the seed expression's span are exactly its calls.
	for _, edge := range n.Edges {
		if edge.Site < seed.Pos() || edge.Site >= seed.End() {
			continue
		}
		cf := facts.Lookup(pass, edge.Callee)
		if cf == nil {
			continue
		}
		for _, e := range ambientEffects {
			if cf.Has[e] && funcfacts.Propagates(edge.Kind, e, cf.Cold) {
				pass.Reportf(edge.Site, "seed expression calls %s, which reaches ambient nondeterminism (%s): %s",
					funcfacts.FuncLabel(edge.Callee, pass.Pkg), e, cf.Witness[e])
			}
		}
	}
	// Identifier leaves must not be package-level variables.
	ast.Inspect(seed, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return true
		}
		pass.Reportf(id.Pos(), "seed derives from package-level variable %s; thread the seed from the spec/options instead, or //lint:allow seedflow <reason>", id.Name)
		return true
	})
}
