// Package funcfacts computes the per-function effect facts that make the
// emulint suite interprocedural. For every function of every package it
// records whether the function — itself or through any call chain the
// call graph can follow — allocates, parks its goroutine, spawns a
// goroutine, reads the wall clock, draws from the ambiently-seeded
// math/rand source, or makes a dynamic call no analysis can see past.
// Each effect carries a witness: a human-readable chain from the function
// to the originating site, so a transitive diagnostic can say *why*.
//
// The analyzer produces no diagnostics of its own. Its customers are the
// contract analyzers, which consume the same-package Result through
// Pass.ResultOf and cross-package facts through Pass.ImportObjectFact:
//
//   - hotpathalloc: an //emu:hotpath function must not call anything
//     whose Allocates fact is set;
//   - nohandoff: an //emu:nohandoff function must not reach Parks,
//     SpawnsGoroutine, or DynamicCall;
//   - nodeterminism: a deterministic package must not call out-of-scope
//     code whose ReadsWallClock or SeedsRandAmbiently fact is set;
//   - seedflow: an RNG seed expression may call helpers only when their
//     clock and rand facts are clean.
//
// Propagation policy, by edge kind (see internal/analysis/callgraph):
//
//   - Static and FuncValue edges propagate every effect.
//   - Interface edges (CHA-resolved) propagate the behavioral effects —
//     Parks, SpawnsGoroutine, ReadsWallClock, SeedsRandAmbiently — but
//     not Allocates (interface dispatch is a contract boundary: each
//     implementation carries its own hot-path annotation if it needs
//     one) and not DynamicCall (a resolved interface call is already
//     accounted; its implementations' own indirections are beyond the
//     caller's blast radius).
//   - Unresolved calls set DynamicCall, which flows up Static and
//     FuncValue edges so annotated roots can report "cannot prove".
//
// A function annotated //emu:cold declares itself a cold path — a
// failure exit or a pool-miss slow path whose allocations are amortized
// away or end the run. Its own effects still compute, but Allocates does
// not propagate to callers. The annotation is load-bearing and audited:
// use it only where the enclosing design argues the path is off the
// steady state.
package funcfacts

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/callgraph"
)

// Effect enumerates the tracked per-function properties.
type Effect int

const (
	// Allocates: the function contains an allocating construct.
	Allocates Effect = iota
	// Parks: the function can block its goroutine (proc parking methods,
	// blocking sync wrappers, channel operations, select, WaitGroup.Wait).
	Parks
	// SpawnsGoroutine: the function starts a goroutine (go statement or a
	// goroutine-spawning engine method).
	SpawnsGoroutine
	// ReadsWallClock: the function reads the wall clock (time.Now and
	// friends).
	ReadsWallClock
	// SeedsRandAmbiently: the function draws from math/rand's ambient
	// global source.
	SeedsRandAmbiently
	// DynamicCall: the function makes a call the call graph cannot
	// resolve (func-typed parameter or field, package-level function
	// variable, interface call with no visible implementation).
	DynamicCall
	// NumEffects bounds the effect arrays in Fact.
	NumEffects
)

var effectNames = [NumEffects]string{
	"allocates", "parks", "spawns-goroutine", "reads-wall-clock",
	"seeds-rand-ambiently", "dynamic-call",
}

func (e Effect) String() string {
	if e >= 0 && e < NumEffects {
		return effectNames[e]
	}
	return fmt.Sprintf("Effect(%d)", int(e))
}

// Fact is the exported per-function summary: the transitive closure of
// the function's effects over every call chain the analyzer can follow.
type Fact struct {
	// Has[e] reports whether effect e is reachable from the function.
	Has [NumEffects]bool
	// Witness[e] is a short chain naming where effect e originates, e.g.
	// "calls sim.(*Engine).failure (engine.go:455) → fmt.Sprintf allocates (engine.go:530)".
	Witness [NumEffects]string
	// Cold marks a function annotated //emu:cold: a declared cold path
	// whose Allocates effect does not propagate to callers.
	Cold bool
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

// Any reports whether any effect (or the cold marker) is set.
func (f *Fact) Any() bool {
	if f.Cold {
		return true
	}
	for _, h := range f.Has {
		if h {
			return true
		}
	}
	return false
}

func (f *Fact) String() string {
	var parts []string
	for e := Effect(0); e < NumEffects; e++ {
		if f.Has[e] {
			parts = append(parts, e.String())
		}
	}
	if f.Cold {
		parts = append(parts, "cold")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, ",")
}

// ColdMarker is the annotation declaring a function a cold path.
const ColdMarker = "//emu:cold"

// IsCold reports whether the declaration carries the //emu:cold marker.
func IsCold(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == ColdMarker || strings.HasPrefix(c.Text, ColdMarker+" ") {
			return true
		}
	}
	return false
}

// Result is the per-package product read through Pass.ResultOf.
type Result struct {
	// Graph is the package's call graph.
	Graph *callgraph.Graph
	// Facts maps every function declared in the package to its transitive
	// fact (never nil for a declared function).
	Facts map[*types.Func]*Fact
}

// Lookup returns the transitive fact for fn from any vantage point: the
// package under analysis (from the Result), an imported package (from its
// serialized facts), or nil when fn has no recorded effects — external
// code with no facts is treated as effect-free, because every effect the
// suite models is either local (caught by the scanners at the call site)
// or flows through module code that does carry facts.
func (r *Result) Lookup(pass *analysis.Pass, fn *types.Func) *Fact {
	if fn.Pkg() == pass.Pkg {
		return r.Facts[fn]
	}
	var f Fact
	if pass.ImportObjectFact(fn, &f) {
		return &f
	}
	return nil
}

// Analyzer computes and exports the facts. It is unscoped by design: the
// transitive checks are only sound if every module package, in or out of
// any diagnosing analyzer's scope, contributes facts.
var Analyzer = &analysis.Analyzer{
	Name: "funcfacts",
	Doc: "computes per-function effect facts (allocates, parks, spawns " +
		"goroutines, reads wall clock, seeds rand ambiently, reaches dynamic " +
		"calls) over the package call graph, for the transitive contract checks",
	FactTypes: []analysis.Fact{(*Fact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass.Files, pass.TypesInfo, pass.Pkg)
	res := &Result{Graph: g, Facts: map[*types.Func]*Fact{}}
	for _, n := range g.Nodes {
		f := &Fact{Cold: IsCold(n.Decl)}
		scanLocal(pass, n, f)
		res.Facts[n.Func] = f
	}
	propagate(pass, res)
	for _, n := range g.Nodes {
		// init functions are uncallable and unresolvable by name (a package
		// may have many); their facts matter only within this package.
		if n.Func.Name() == "init" && n.Func.Type().(*types.Signature).Recv() == nil {
			continue
		}
		if f := res.Facts[n.Func]; f.Any() {
			pass.ExportObjectFact(n.Func, f)
		}
	}
	return res, nil
}

// scanLocal seeds a function's fact with its body's own effect sites,
// keeping the first witness per effect.
func scanLocal(pass *analysis.Pass, n *callgraph.Node, f *Fact) {
	set := func(pos token.Pos, e Effect, format string, args ...any) {
		if f.Has[e] {
			return
		}
		f.Has[e] = true
		f.Witness[e] = fmt.Sprintf("%s (%s)", fmt.Sprintf(format, args...), shortPos(pass.Fset, pos))
	}
	body := n.Decl.Body
	ScanAlloc(pass.TypesInfo, body, func(pos token.Pos, format string, args ...any) {
		set(pos, Allocates, format, args...)
	})
	ScanHandoff(pass.TypesInfo, body, func(pos token.Pos, e Effect, format string, args ...any) {
		set(pos, e, format, args...)
	})
	ScanAmbient(pass.TypesInfo, body, func(pos token.Pos, e Effect, format string, args ...any) {
		set(pos, e, format, args...)
	})
	for _, d := range n.Dynamic {
		set(d.Site, DynamicCall, "%s", d.Desc)
	}
}

// propagate folds callee facts into callers until the package reaches a
// fixpoint (recursion and mutual recursion converge because effects only
// ever switch on). Iteration order is the graph's declaration order, so
// witnesses are deterministic.
func propagate(pass *analysis.Pass, res *Result) {
	for changed := true; changed; {
		changed = false
		for _, n := range res.Graph.Nodes {
			f := res.Facts[n.Func]
			for _, edge := range n.Edges {
				cf := res.Lookup(pass, edge.Callee)
				if cf == nil {
					continue
				}
				for e := Effect(0); e < NumEffects; e++ {
					if !cf.Has[e] || f.Has[e] || !Propagates(edge.Kind, e, cf.Cold) {
						continue
					}
					f.Has[e] = true
					f.Witness[e] = link(pass, edge, cf.Witness[e])
					changed = true
				}
			}
		}
	}
}

// Propagates reports whether effect e of a callee (cold or not) crosses
// an edge of the given kind, implementing the policy documented in the
// package comment. The diagnosing analyzers apply the same policy at
// their annotated roots so a root-level diagnostic and a propagated fact
// never disagree.
func Propagates(kind callgraph.Kind, e Effect, calleeCold bool) bool {
	switch e {
	case Allocates:
		return kind != callgraph.Interface && !calleeCold
	case DynamicCall:
		return kind != callgraph.Interface
	default:
		return true
	}
}

// link builds a caller-side witness: the call site plus the callee's own
// chain, truncated so deep chains stay readable.
func link(pass *analysis.Pass, edge callgraph.Edge, calleeWitness string) string {
	w := fmt.Sprintf("calls %s (%s) → %s",
		FuncLabel(edge.Callee, pass.Pkg), shortPos(pass.Fset, edge.Site), calleeWitness)
	const maxWitness = 280
	if len(w) > maxWitness {
		w = w[:maxWitness-1] + "…"
	}
	return w
}

// FuncLabel renders fn compactly relative to from: "F" or "(*T).M" for
// same-package functions, "pkg.F" or "pkg.(*T).M" otherwise.
func FuncLabel(fn *types.Func, from *types.Package) string {
	var b strings.Builder
	if fn.Pkg() != nil && fn.Pkg() != from {
		b.WriteString(fn.Pkg().Name())
		b.WriteByte('.')
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		b.WriteByte('(')
		b.WriteString(types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }))
		b.WriteString(").")
	}
	b.WriteString(fn.Name())
	return strings.ReplaceAll(b.String(), "().", ").") // TypeString artifacts never occur; keep label stable
}

// shortPos renders a position as base-filename:line.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
