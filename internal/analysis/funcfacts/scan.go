package funcfacts

// Local effect scanners: the intraprocedural half of the fact computation.
// Each scanner walks one function body and reports every site exhibiting
// its effect through a callback, so the same logic serves two masters —
// the diagnosing analyzers (hotpathalloc, nohandoff) call them with
// pass.Reportf to flag sites inside annotated functions, and the fact
// computation calls them with a first-witness collector to summarize
// every function.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReportFunc receives one effect site. Messages are phrased without an
// analyzer prefix; diagnosing analyzers prepend their own framing.
type ReportFunc func(pos token.Pos, format string, args ...any)

// --- allocation ---

// ScanAlloc reports every allocating construct in body: calls into fmt or
// errors, make/new, function literals, slice and map literals, string
// concatenation and string<->[]byte/[]rune conversions, non-self append,
// and implicit boxing of a non-pointer value into an interface. Arguments
// of panic are exempt: a panicking path is already dead.
func ScanAlloc(info *types.Info, body ast.Node, report ReportFunc) {
	c := &allocScanner{info: info, report: report, appendHandled: map[*ast.CallExpr]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n.Fun, "panic") {
				return false // cold by construction
			}
			c.checkCall(n)
		case *ast.FuncLit:
			report(n.Pos(), "function literal may escape and allocate")
			return false
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		}
		return true
	})
}

// allocScanner carries per-body state: appends already validated (or
// flagged) at their enclosing assignment, which checkCall must not
// double-report.
type allocScanner struct {
	info          *types.Info
	report        ReportFunc
	appendHandled map[*ast.CallExpr]bool
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerLike types carry their payload in the interface data word, so
// converting one to an interface does not allocate.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *allocScanner) checkCall(call *ast.CallExpr) {
	info, report := c.info, c.report
	// Conversions: string<->[]byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if from != nil && (isString(to) != isString(from)) && (isString(to) || isString(from)) {
				report(call.Pos(), "conversion between string and byte/rune slice allocates")
			}
		}
		return
	}
	if isBuiltin(info, call.Fun, "make") || isBuiltin(info, call.Fun, "new") {
		report(call.Pos(), "%s allocates", call.Fun.(*ast.Ident).Name)
		return
	}
	if isBuiltin(info, call.Fun, "append") {
		// Non-self appends are caught at the assignment; an append anywhere
		// else (nested in a call, discarded) abandons the reuse guarantee.
		if !c.appendHandled[call] {
			report(call.Pos(), "append result is discarded or not reassigned to its base; only x = append(x, ...) reuses storage")
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "errors":
					report(call.Pos(), "%s.%s allocates", pn.Imported().Name(), sel.Sel.Name)
					return
				}
			}
		}
	}
	c.checkBoxing(call)
}

// checkAssign validates the self-append shape: for each lhs_i = append(b,
// ...), b (or its slice-expression base, as in x = append(x[:0], ...))
// must be syntactically identical to lhs_i.
func (c *allocScanner) checkAssign(asg *ast.AssignStmt) {
	for i, rhs := range asg.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(c.info, call.Fun, "append") || len(call.Args) == 0 {
			continue
		}
		c.appendHandled[call] = true
		if i >= len(asg.Lhs) {
			continue
		}
		base := call.Args[0]
		if se, ok := base.(*ast.SliceExpr); ok {
			base = se.X
		}
		if types.ExprString(asg.Lhs[i]) != types.ExprString(base) {
			c.report(call.Pos(), "append to %s assigned to %s allocates a fresh backing array; use the self-append form x = append(x, ...)",
				types.ExprString(base), types.ExprString(asg.Lhs[i]))
		}
	}
}

func (c *allocScanner) checkComposite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
}

// checkBoxing flags arguments whose static type is a non-pointer concrete
// type being passed where the callee expects an interface — each such call
// heap-allocates the boxed copy.
func (c *allocScanner) checkBoxing(call *ast.CallExpr) {
	sig, ok := funcSig(c.info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := c.info.TypeOf(arg)
		if at == nil || pointerLike(at) || isUntypedNil(c.info, arg) {
			continue
		}
		c.report(arg.Pos(), "%s is boxed into interface %s (allocates)", at, pt)
	}
}

func funcSig(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// --- goroutine handoffs ---

// Parking are the Proc methods that block the calling goroutine, mapped to
// their continuation-safe replacements.
var Parking = map[string]string{
	"Park":       "Suspend(site)",
	"ParkReason": "Suspend(site)",
	"WaitUntil":  "SleepUntil(t)",
	"Delay":      "SleepUntil(p.Now()+d)",
}

// Blocking are the sync wrappers that park the proc's goroutine when they
// cannot proceed, mapped to their park-state counterparts.
var Blocking = map[string]string{
	"Acquire": "AcquireCont",
	"Wait":    "WaitCont",
}

// Spawning are the Engine methods that start a goroutine per proc, mapped
// to their continuation counterparts.
var Spawning = map[string]string{
	"Go":       "SpawnContAt",
	"GoAt":     "SpawnContAt",
	"SpawnAt":  "SpawnContAt",
	"LaunchAt": "LaunchContAt",
}

// HandoffReport receives one handoff site with the effect it exhibits
// (Parks or SpawnsGoroutine).
type HandoffReport func(pos token.Pos, effect Effect, format string, args ...any)

// ScanHandoff reports every goroutine handoff in body: calls to the
// parking proc methods, the blocking sync wrappers, and the
// goroutine-spawning engine methods (shape-matched, as in the nohandoff
// analyzer); plus the raw runtime forms — go statements, channel sends,
// channel receives, select statements, and ranging over a channel.
func ScanHandoff(info *types.Info, body ast.Node, report HandoffReport) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), SpawnsGoroutine, "go statement starts a goroutine")
		case *ast.SendStmt:
			report(n.Pos(), Parks, "channel send can block the goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), Parks, "channel receive can block the goroutine")
			}
		case *ast.SelectStmt:
			report(n.Pos(), Parks, "select can block the goroutine")
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), Parks, "ranging over a channel blocks the goroutine")
				}
			}
		case *ast.CallExpr:
			scanHandoffCall(info, n, report)
		}
		return true
	})
}

func scanHandoffCall(info *types.Info, call *ast.CallExpr, report HandoffReport) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if cont, ok := Parking[name]; ok && IsParkable(recv) {
		report(call.Pos(), Parks, "%s parks the calling goroutine; use %s and return parked", name, cont)
		return
	}
	if cont, ok := Blocking[name]; ok && len(call.Args) == 1 && IsParkable(info.TypeOf(call.Args[0])) {
		report(call.Pos(), Parks, "%s(p) parks the proc's goroutine; use %s(p) and return parked", name, cont)
		return
	}
	if cont, ok := Spawning[name]; ok && IsContEngine(recv) {
		report(call.Pos(), SpawnsGoroutine, "%s starts a goroutine per proc; use %s with a Stepper", name, cont)
		return
	}
	// sync.WaitGroup.Wait blocks until the group drains.
	if name == "Wait" && isSyncType(recv, "WaitGroup") {
		report(call.Pos(), Parks, "sync.WaitGroup.Wait blocks the goroutine")
		return
	}
	if name == "Sleep" && pkgOf(info, sel.X) == "time" {
		report(call.Pos(), Parks, "time.Sleep blocks the goroutine")
	}
}

// IsParkable reports whether t (or *t) is a named type with both a Park()
// and a ParkReason(string) method — the shape of a simulated process.
func IsParkable(t types.Type) bool {
	return hasMethod(t, "Park") && hasMethod(t, "ParkReason")
}

// IsContEngine reports whether t offers both the goroutine and the
// continuation spawn surface — the shape of the event-loop engine.
func IsContEngine(t types.Type) bool {
	return hasMethod(t, "SpawnAt") && hasMethod(t, "SpawnContAt")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == name && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// --- ambient nondeterminism ---

// WallClockFuncs are the time package functions that read or depend on the
// wall clock. Duration arithmetic and the time.Duration type stay legal.
var WallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// SeededConstructors are the math/rand package-level names that build an
// explicitly seeded generator; every other package-level call uses the
// ambient global source.
var SeededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// AmbientReport receives one ambient-nondeterminism site with the effect
// it exhibits (ReadsWallClock or SeedsRandAmbiently).
type AmbientReport func(pos token.Pos, effect Effect, format string, args ...any)

// ScanAmbient reports every wall-clock read and every use of the
// ambiently-seeded math/rand global source in body.
func ScanAmbient(info *types.Info, body ast.Node, report AmbientReport) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgOf(info, sel.X) {
		case "time":
			if WallClockFuncs[sel.Sel.Name] {
				report(sel.Pos(), ReadsWallClock, "time.%s reads the wall clock", sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			if !SeededConstructors[sel.Sel.Name] && isFuncOrVar(info, sel) {
				report(sel.Pos(), SeedsRandAmbiently, "rand.%s uses the ambient global source", sel.Sel.Name)
			}
		}
		return true
	})
}

// pkgOf resolves the package an identifier names, or "" if it is not a
// package qualifier.
func pkgOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isFuncOrVar reports whether the selector names a function or variable
// (as opposed to a type such as rand.Rand, which is fine to mention).
func isFuncOrVar(info *types.Info, sel *ast.SelectorExpr) bool {
	switch info.Uses[sel.Sel].(type) {
	case *types.Func, *types.Var:
		return true
	}
	return false
}
