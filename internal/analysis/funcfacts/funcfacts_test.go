package funcfacts_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/callgraph"
	"emuchick/internal/analysis/funcfacts"
)

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m[path], nil
}

func (m mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return m[path], nil
}

func checkSrc(t *testing.T, fset *token.FileSet, imp types.ImporterFrom, path, src string) *analysis.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	pkg, info, err := analysis.Check(fset, imp, path, "", files)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}
}

// analyze runs the real driver (facts serialize across every package
// boundary) and captures each package's funcfacts Result.
func analyze(t *testing.T, pkgs ...*analysis.Package) map[string]*funcfacts.Result {
	t.Helper()
	results := map[string]*funcfacts.Result{}
	capture := &analysis.Analyzer{
		Name:     "capture",
		Doc:      "captures funcfacts results for the test",
		Requires: []*analysis.Analyzer{funcfacts.Analyzer},
		Run: func(pass *analysis.Pass) (any, error) {
			results[pass.Pkg.Path()] = pass.ResultOf[funcfacts.Analyzer].(*funcfacts.Result)
			return nil, nil
		},
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{capture})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	return results
}

func fact(t *testing.T, res *funcfacts.Result, pkg *analysis.Package, name string) *funcfacts.Fact {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path)
	}
	f := res.Facts[fn]
	if f == nil {
		t.Fatalf("no fact for %s.%s", pkg.Path, name)
	}
	return f
}

func TestPropagatesPolicy(t *testing.T) {
	cases := []struct {
		kind callgraph.Kind
		e    funcfacts.Effect
		cold bool
		want bool
	}{
		{callgraph.Static, funcfacts.Allocates, false, true},
		{callgraph.Static, funcfacts.Allocates, true, false},
		{callgraph.FuncValue, funcfacts.Allocates, false, true},
		{callgraph.Interface, funcfacts.Allocates, false, false},
		{callgraph.Interface, funcfacts.DynamicCall, false, false},
		{callgraph.Static, funcfacts.DynamicCall, true, true},
		{callgraph.Interface, funcfacts.Parks, false, true},
		{callgraph.Interface, funcfacts.SpawnsGoroutine, true, true},
		{callgraph.Interface, funcfacts.ReadsWallClock, false, true},
		{callgraph.Static, funcfacts.Parks, true, true},
	}
	for _, c := range cases {
		if got := funcfacts.Propagates(c.kind, c.e, c.cold); got != c.want {
			t.Errorf("Propagates(%v, %v, cold=%v) = %v, want %v", c.kind, c.e, c.cold, got, c.want)
		}
	}
}

func TestLocalEffects(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

func alloc() []int { return make([]int, 8) }

func park(ch chan int) { ch <- 1 }

func spawn() { go park(nil) }

func dynamic(f func()) { f() }

func clean(x int) int { return x + 1 }
`)
	res := analyze(t, pkg)["p"]
	checks := []struct {
		fn string
		e  funcfacts.Effect
	}{
		{"alloc", funcfacts.Allocates},
		{"park", funcfacts.Parks},
		{"spawn", funcfacts.SpawnsGoroutine},
		{"dynamic", funcfacts.DynamicCall},
	}
	for _, c := range checks {
		f := fact(t, res, pkg, c.fn)
		if !f.Has[c.e] {
			t.Errorf("%s: effect %v not set (fact: %s)", c.fn, c.e, f)
		}
		if f.Witness[c.e] == "" {
			t.Errorf("%s: effect %v has no witness", c.fn, c.e)
		}
	}
	if f := fact(t, res, pkg, "clean"); f.Any() {
		t.Errorf("clean: want no effects, got %s", f)
	}
	// spawn reaches park's channel send too: Parks propagates up the
	// static edge inside the go statement's callee.
	if f := fact(t, res, pkg, "spawn"); !f.Has[funcfacts.Parks] {
		t.Errorf("spawn: Parks should propagate from park (fact: %s)", f)
	}
}

// TestChainWitness pins the witness format over a two-hop chain: the
// caller's witness names each link and ends at the originating site.
func TestChainWitness(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

func leaf() []int { return make([]int, 4) }

func mid() []int { return leaf() }

func top() []int { return mid() }
`)
	res := analyze(t, pkg)["p"]
	f := fact(t, res, pkg, "top")
	if !f.Has[funcfacts.Allocates] {
		t.Fatalf("top: Allocates not set (fact: %s)", f)
	}
	w := f.Witness[funcfacts.Allocates]
	for _, part := range []string{"calls mid (p.go:", "calls leaf (p.go:", "make allocates"} {
		if !strings.Contains(w, part) {
			t.Errorf("witness %q missing %q", w, part)
		}
	}
}

// TestColdStopsAllocates pins the //emu:cold contract: the cold function
// keeps its own Allocates fact, callers inherit everything except it.
func TestColdStopsAllocates(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

//emu:cold pool-miss path, amortized away
func coldLeaf(ch chan int) []int {
	ch <- 1
	return make([]int, 4)
}

func caller(ch chan int) { coldLeaf(ch) }
`)
	res := analyze(t, pkg)["p"]
	leaf := fact(t, res, pkg, "coldLeaf")
	if !leaf.Cold || !leaf.Has[funcfacts.Allocates] || !leaf.Has[funcfacts.Parks] {
		t.Fatalf("coldLeaf: want cold+allocates+parks, got %s", leaf)
	}
	caller := fact(t, res, pkg, "caller")
	if caller.Has[funcfacts.Allocates] {
		t.Errorf("caller: Allocates leaked through //emu:cold (fact: %s)", caller)
	}
	if !caller.Has[funcfacts.Parks] {
		t.Errorf("caller: Parks should cross the cold boundary (fact: %s)", caller)
	}
}

// TestInterfaceEdgePolicy pins CHA propagation: behavioral effects cross
// interface dispatch, Allocates does not.
func TestInterfaceEdgePolicy(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

type Worker interface{ Work(ch chan int) }

type W struct{}

func (W) Work(ch chan int) {
	ch <- 1
	_ = make([]int, 8)
}

func drive(w Worker, ch chan int) { w.Work(ch) }
`)
	res := analyze(t, pkg)["p"]
	f := fact(t, res, pkg, "drive")
	if !f.Has[funcfacts.Parks] {
		t.Errorf("drive: Parks should cross the interface edge (fact: %s)", f)
	}
	if f.Has[funcfacts.Allocates] {
		t.Errorf("drive: Allocates must not cross the interface edge (fact: %s)", f)
	}
}

// TestMutualRecursion pins fixpoint termination: effects only switch on,
// so a cycle converges with both members carrying the cycle's effects.
func TestMutualRecursion(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, nil, "p", `package p

func ping(n int) []int {
	if n == 0 {
		return make([]int, 1)
	}
	return pong(n - 1)
}

func pong(n int) []int { return ping(n) }
`)
	res := analyze(t, pkg)["p"]
	for _, name := range []string{"ping", "pong"} {
		if f := fact(t, res, pkg, name); !f.Has[funcfacts.Allocates] {
			t.Errorf("%s: Allocates not set across the recursion (fact: %s)", name, f)
		}
	}
}

// TestSyntheticPackageDAG runs the driver over a three-package chain and
// requires the allocation fact to flow bottom-up across both boundaries —
// through the serialized fact store, not shared memory — with a witness
// naming every hop.
func TestSyntheticPackageDAG(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	leaf := checkSrc(t, fset, imp, "leaf", `package leaf

func Alloc() []int { return make([]int, 4) }
`)
	imp["leaf"] = leaf.Types
	mid := checkSrc(t, fset, imp, "mid", `package mid

import "leaf"

func Wrap() []int { return leaf.Alloc() }
`)
	imp["mid"] = mid.Types
	top := checkSrc(t, fset, imp, "top", `package top

import "mid"

func Use() []int { return mid.Wrap() }
`)
	// Deliberately out of dependency order: the driver must topo-sort.
	results := analyze(t, top, leaf, mid)
	f := fact(t, results["top"], top, "Use")
	if !f.Has[funcfacts.Allocates] {
		t.Fatalf("top.Use: Allocates did not cross the package DAG (fact: %s)", f)
	}
	w := f.Witness[funcfacts.Allocates]
	for _, part := range []string{"calls mid.Wrap (top.go:", "calls leaf.Alloc (mid.go:", "make allocates"} {
		if !strings.Contains(w, part) {
			t.Errorf("witness %q missing %q", w, part)
		}
	}
	// The middle layer saw the fact too.
	if f := fact(t, results["mid"], mid, "Wrap"); !f.Has[funcfacts.Allocates] {
		t.Errorf("mid.Wrap: Allocates not set (fact: %s)", f)
	}
}
