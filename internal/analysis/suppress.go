package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression grammar is one comment per tolerated finding:
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the flagged line itself or on the line directly above
// it. The reason is mandatory — an allow that cannot say why it exists is
// reported as a finding of its own — and the marker silences exactly one
// analyzer on exactly one line, so a suppression can never hide an
// unrelated future regression on the same statement.

const allowPrefix = "//lint:allow"

// allowKey addresses one (file, line, analyzer) suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowIndex map[allowKey]bool

// collect indexes every //lint:allow comment in f, reporting malformed
// markers into diags.
func (ai allowIndex) collect(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lintcomment",
					Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
				})
				continue
			}
			ai[allowKey{pos.Filename, pos.Line, fields[0]}] = true
		}
	}
}

// allowed reports whether d is suppressed by an allow comment on its line
// or the line above.
func (ai allowIndex) allowed(d Diagnostic) bool {
	if d.Analyzer == "lintcomment" {
		return false
	}
	return ai[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		ai[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}
