// Package parksite enforces the repo's post-mortem labeling contract:
// every point where a simulated process blocks must carry a park-site
// label, so a sim.RunError's parked-proc dump names what each proc was
// waiting on instead of dumping anonymous "park" entries.
//
// Three rules:
//
//  1. No bare Park() calls. Park is the unlabeled fallback; call sites
//     must use ParkReason(site) or a labeled wrapper (Semaphore.Acquire,
//     Join.Wait) instead.
//  2. ParkReason's site argument must not be the empty string or the
//     generic "park" label.
//  3. Inside the sim package itself, a call to the low-level yield must be
//     preceded by a store to the proc's site field in the same function —
//     the root invariant that makes rules 1 and 2 sufficient.
//
// The rules key off method shape, not package identity: any named type
// offering both Park() and ParkReason(string) is treated as a parkable
// process, which lets the analyzer test itself on a fake.
package parksite

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"emuchick/internal/analysis"
)

// Analyzer is the parksite check.
var Analyzer = &analysis.Analyzer{
	Name: "parksite",
	Doc: "requires every sim blocking point to carry a park-site label " +
		"(ParkReason or a labeled wrapper) so failure dumps are never anonymous",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := pass.TypeOf(sel.X)
			if recv == nil || !isParkable(recv) {
				return true
			}
			switch sel.Sel.Name {
			case "Park":
				if len(call.Args) == 0 {
					pass.Reportf(call.Pos(), "bare Park() leaves an anonymous proc in failure dumps; use ParkReason(site) or a labeled wrapper")
				}
			case "ParkReason":
				checkLabel(pass, f, call)
			}
			return true
		})
		checkYieldSites(pass, f)
	}
	return nil, nil
}

// isParkable reports whether t (or *t) is a named type with both a Park()
// and a ParkReason(string) method — the shape of a simulated process.
func isParkable(t types.Type) bool {
	return hasMethod(t, "Park") && hasMethod(t, "ParkReason")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// checkLabel rejects site labels that carry no information: the empty
// string and the generic "park" the bare wrapper would have used anyway.
// The Park method's own body is the one place the "park" fallback label is
// legitimate.
func checkLabel(pass *analysis.Pass, f *ast.File, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant labels (semaphore names) are fine
	}
	switch constant.StringVal(tv.Value) {
	case "":
		pass.Reportf(call.Args[0].Pos(), "empty park-site label; name what the proc is blocked on")
	case "park":
		if enclosingFuncName(f, call.Pos()) == "Park" {
			return
		}
		pass.Reportf(call.Args[0].Pos(), `generic "park" label; name what the proc is blocked on`)
	}
}

// enclosingFuncName returns the name of the top-level function declaration
// spanning pos, or "".
func enclosingFuncName(f *ast.File, pos token.Pos) string {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd.Name.Name
		}
	}
	return ""
}

// checkYieldSites enforces the root invariant inside the proc package: a
// yield must see a site store earlier in the same function (ParkReason
// satisfies it by storing the caller's label; the yield definition itself
// is exempt).
func checkYieldSites(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Name.Name == "yield" {
			continue
		}
		siteStored := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "site" {
						siteStored = true
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "yield" {
					return true
				}
				recv := pass.TypeOf(sel.X)
				if recv == nil || !isParkable(recv) {
					return true
				}
				if !siteStored {
					pass.Reportf(n.Pos(), "yield without a prior park-site store; set the proc's site (or call ParkReason) so failure dumps can name this blocking point")
				}
			}
			return true
		})
	}
}
