// Package callgraph builds a per-package, CHA-style call graph from
// go/types information, the foundation of the interprocedural half of the
// emulint suite (see internal/analysis/funcfacts).
//
// The graph has one node per function or method declared in the package.
// Each node records every call its body can make, classified by how the
// callee was resolved:
//
//   - Static: a direct call of a declared function or a method on a
//     concrete receiver — the callee is known exactly.
//   - FuncValue: a call through a local variable whose bindings are all
//     resolvable function identifiers in the same body (best-effort
//     single-function-at-a-time value flow; a variable with any
//     unresolvable binding degrades to a dynamic site instead).
//   - Interface: an interface method call, resolved by class-hierarchy
//     analysis over the visible type universe — the package itself plus
//     its transitive imports. Every named type in that universe whose
//     method set satisfies the interface contributes one edge to its
//     concrete method. CHA treats the visible universe as closed:
//     implementations defined only in downstream packages are invisible,
//     which is exactly why a call with zero visible implementations is
//     recorded as a dynamic site rather than silently dropped.
//
// Calls the builder cannot resolve at all — func-typed parameters and
// struct fields, package-level function variables, interface calls with no
// visible implementation — become explicit DynamicSite records, so
// consumers can diagnose "cannot prove" instead of assuming innocence.
//
// Function literals are attributed to the enclosing declaration: the
// effects and calls of a closure body count against the function that
// creates it. That over-approximates (a closure may never run) in exactly
// the conservative direction the contract analyzers need.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Kind classifies how an edge's callee was resolved.
type Kind int

const (
	// Static is a direct call of a declared function or concrete method.
	Static Kind = iota
	// FuncValue is a call through a local variable with resolvable bindings.
	FuncValue
	// Interface is an interface method call resolved by CHA.
	Interface
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case FuncValue:
		return "funcvalue"
	case Interface:
		return "interface"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Edge is one resolved call.
type Edge struct {
	Site   token.Pos
	Kind   Kind
	Callee *types.Func
}

// DynamicSite is one call the builder could not resolve to any callee.
type DynamicSite struct {
	Site token.Pos
	// Desc says why the call is dynamic, for diagnostics: "call through
	// func value f", "interface call (machine.CBody).Step with no visible
	// implementation", ...
	Desc string
}

// Node is one declared function or method and everything its body (plus
// any function literals it contains) can call.
type Node struct {
	Func    *types.Func
	Decl    *ast.FuncDecl
	Edges   []Edge
	Dynamic []DynamicSite
}

// Graph is the package's call graph. Nodes appear in declaration order, so
// iterating Nodes is deterministic.
type Graph struct {
	Nodes  []*Node
	ByFunc map[*types.Func]*Node
}

// Node returns the node for fn, or nil if fn is not declared in the
// graphed package.
func (g *Graph) Node(fn *types.Func) *Node { return g.ByFunc[fn] }

// Build constructs the call graph for one type-checked package. files,
// info, and pkg are the package's syntax, type information, and type
// object, exactly as an analysis.Pass carries them.
func Build(files []*ast.File, info *types.Info, pkg *types.Package) *Graph {
	b := &builder{
		info:  info,
		pkg:   pkg,
		impls: map[*types.Func][]*types.Func{},
	}
	b.universe = visibleUniverse(pkg)
	g := &Graph{ByFunc: map[*types.Func]*Node{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: obj, Decl: fd}
			b.walk(n, fd.Body)
			g.Nodes = append(g.Nodes, n)
			g.ByFunc[obj] = n
		}
	}
	return g
}

// visibleUniverse returns pkg plus its transitive imports, the closed world
// CHA resolves interface calls over, in deterministic order.
func visibleUniverse(pkg *types.Package) []*types.Package {
	seen := map[*types.Package]bool{pkg: true}
	order := []*types.Package{pkg}
	for i := 0; i < len(order); i++ {
		imps := append([]*types.Package{}, order[i].Imports()...)
		sort.Slice(imps, func(a, b int) bool { return imps[a].Path() < imps[b].Path() })
		for _, imp := range imps {
			if !seen[imp] {
				seen[imp] = true
				order = append(order, imp)
			}
		}
	}
	return order
}

type builder struct {
	info     *types.Info
	pkg      *types.Package
	universe []*types.Package
	// impls memoizes CHA resolution per abstract interface method.
	impls map[*types.Func][]*types.Func
	// named caches the universe's named-type inventory, built on first
	// interface resolution (most packages never need it).
	named []*types.Named
}

// walk scans one function body, including nested function literals.
func (b *builder) walk(n *Node, body *ast.BlockStmt) {
	// First pass: best-effort func-value bindings of local variables.
	bindings := b.collectBindings(body)
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		b.resolveCall(n, call, bindings)
		return true
	})
}

// funcBinding is the value-flow summary of one func-typed local variable.
type funcBinding struct {
	callees []*types.Func
	// unknown marks a variable with at least one unresolvable binding
	// (a call result, a parameter, a field load); calls through it are
	// dynamic no matter what else was assigned.
	unknown bool
}

// collectBindings records, for every local variable in body, the set of
// functions it may hold — when every assignment to it is a resolvable
// function identifier or a function literal. Function literals contribute
// no callee (their bodies are attributed to the enclosing declaration), so
// calling a lit-bound variable is not a dynamic site.
func (b *builder) collectBindings(body *ast.BlockStmt) map[*types.Var]*funcBinding {
	bindings := map[*types.Var]*funcBinding{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := b.info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = b.info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			return
		}
		bd := bindings[v]
		if bd == nil {
			bd = &funcBinding{}
			bindings[v] = bd
		}
		if rhs == nil {
			bd.unknown = true
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			return // body attributed to the encloser; no edge needed
		default:
			if fn := b.staticCallee(rhs); fn != nil {
				bd.callees = append(bd.callees, fn)
				return
			}
			_ = rhs
		}
		bd.unknown = true
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i := range node.Lhs {
					record(node.Lhs[i], node.Rhs[i])
				}
			} else {
				for _, lhs := range node.Lhs {
					record(lhs, nil) // multi-value unpacking: callee unknown
				}
			}
		case *ast.ValueSpec:
			if len(node.Names) == len(node.Values) {
				for i := range node.Names {
					record(node.Names[i], node.Values[i])
				}
			} else if len(node.Values) != 0 {
				for _, name := range node.Names {
					record(name, nil)
				}
			}
		}
		return true
	})
	return bindings
}

// staticCallee resolves an expression naming a declared function or a
// method value on a concrete receiver, or nil.
func (b *builder) staticCallee(e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := b.info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[e]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok && !isAbstract(fn) {
					return fn
				}
			}
			return nil
		}
		// Package-qualified function: selection info is absent.
		if fn, ok := b.info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T]
		return b.staticCallee(e.X)
	case *ast.IndexListExpr:
		return b.staticCallee(e.X)
	}
	return nil
}

// isAbstract reports whether fn is an interface method (no body anywhere).
func isAbstract(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Type().Underlying().(*types.Interface)
	return ok
}

// resolveCall classifies one call expression into edges or a dynamic site.
func (b *builder) resolveCall(n *Node, call *ast.CallExpr, bindings map[*types.Var]*funcBinding) {
	fun := ast.Unparen(call.Fun)
	// Type conversions and builtins are not calls.
	if tv, ok := b.info.Types[fun]; ok && tv.IsType() {
		return
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := b.info.Uses[fun].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: Static, Callee: obj})
			return
		case *types.Var:
			b.resolveVarCall(n, call, fun.Name, obj, bindings)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				break
			}
			if !isAbstract(fn) {
				n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: Static, Callee: fn})
				return
			}
			b.resolveInterfaceCall(n, call, fn)
			return
		}
		// Package-qualified: pkg.F (func) or pkg.V (function variable).
		switch obj := b.info.Uses[fun.Sel].(type) {
		case *types.Func:
			n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: Static, Callee: obj})
			return
		case *types.Var:
			if obj.IsField() || obj.Pkg() != b.pkg || obj.Parent() != b.pkg.Scope() {
				n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(),
					Desc: fmt.Sprintf("call through function variable %s", fun.Sel.Name)})
				return
			}
			// Package-level func var of the analyzed package itself:
			// still dynamic (any package init or caller may rebind it).
			n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(),
				Desc: fmt.Sprintf("call through package-level function variable %s", fun.Sel.Name)})
			return
		}
	case *ast.FuncLit:
		return // body attributed to the encloser
	case *ast.IndexExpr, *ast.IndexListExpr:
		if fn := b.staticCallee(fun); fn != nil {
			n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: Static, Callee: fn})
			return
		}
	}
	n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(), Desc: "dynamic call"})
}

// resolveVarCall handles a call through a named variable: local variables
// with fully resolved bindings become FuncValue edges, everything else is
// a dynamic site.
func (b *builder) resolveVarCall(n *Node, call *ast.CallExpr, name string, v *types.Var, bindings map[*types.Var]*funcBinding) {
	if bd, ok := bindings[v]; ok && !bd.unknown {
		for _, fn := range dedupFuncs(bd.callees) {
			n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: FuncValue, Callee: fn})
		}
		return
	}
	// A package-level function variable is dynamic for a different reason
	// than a local: any init or caller may rebind it at any time.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(),
			Desc: fmt.Sprintf("call through package-level function variable %s", name)})
		return
	}
	n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(),
		Desc: fmt.Sprintf("call through func value %s", name)})
}

// resolveInterfaceCall resolves x.M() where M is an interface method, by
// CHA over the visible universe.
func (b *builder) resolveInterfaceCall(n *Node, call *ast.CallExpr, m *types.Func) {
	impls := b.implementations(m)
	if len(impls) == 0 {
		n.Dynamic = append(n.Dynamic, DynamicSite{Site: call.Pos(),
			Desc: fmt.Sprintf("interface call %s with no visible implementation", methodLabel(m))})
		return
	}
	for _, fn := range impls {
		n.Edges = append(n.Edges, Edge{Site: call.Pos(), Kind: Interface, Callee: fn})
	}
}

// methodLabel renders an abstract method as (pkg.Iface).Name for messages.
func methodLabel(m *types.Func) string {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return m.Name()
	}
	return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), types.RelativeTo(m.Pkg())), m.Name())
}

// implementations returns the concrete methods implementing abstract
// method m on any named type visible in the universe, memoized.
func (b *builder) implementations(m *types.Func) []*types.Func {
	if impls, ok := b.impls[m]; ok {
		return impls
	}
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var impls []*types.Func
	if iface != nil {
		for _, named := range b.namedTypes() {
			if _, ok := named.Underlying().(*types.Interface); ok {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			for i := 0; i < ms.Len(); i++ {
				if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == m.Name() && !isAbstract(fn) {
					impls = append(impls, fn)
				}
			}
		}
	}
	impls = dedupFuncs(impls)
	b.impls[m] = impls
	return impls
}

// namedTypes inventories every named type declared at package scope across
// the universe, built lazily on the first interface call.
func (b *builder) namedTypes() []*types.Named {
	if b.named != nil {
		return b.named
	}
	b.named = []*types.Named{}
	for _, pkg := range b.universe {
		scope := pkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.named = append(b.named, named)
			}
		}
	}
	return b.named
}

// dedupFuncs sorts funcs deterministically (by full name, then position)
// and drops duplicates.
func dedupFuncs(fns []*types.Func) []*types.Func {
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].FullName() != fns[j].FullName() {
			return fns[i].FullName() < fns[j].FullName()
		}
		return fns[i].Pos() < fns[j].Pos()
	})
	out := fns[:0]
	var prev *types.Func
	for _, fn := range fns {
		if fn != prev {
			out = append(out, fn)
		}
		prev = fn
	}
	return out
}
