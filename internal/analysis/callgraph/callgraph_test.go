package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/callgraph"
)

func buildGraph(t *testing.T, src string) (*callgraph.Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := analysis.Check(fset, nil, "p", "", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Build([]*ast.File{f}, info, pkg), pkg
}

func node(t *testing.T, g *callgraph.Graph, pkg *types.Package, name string) *callgraph.Node {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no function %s", name)
	}
	n := g.Node(obj.(*types.Func))
	if n == nil {
		t.Fatalf("no node for %s", name)
	}
	return n
}

func calleeNames(n *callgraph.Node, kind callgraph.Kind) []string {
	var names []string
	for _, e := range n.Edges {
		if e.Kind == kind {
			names = append(names, e.Callee.Name())
		}
	}
	return names
}

const graphSrc = `package p

type I interface{ M() }

type T struct{}

func (T) M() {}

type J interface{ N() }

func target() {}

var Hook = target

func static() { target() }

func methodCall(t T) { t.M() }

func funcValue() {
	f := target
	f()
}

func funcParam(f func()) { f() }

func viaInterface(i I) { i.M() }

func noImpl(j J) { j.N() }

func viaHook() { Hook() }

func literal() {
	f := func() { target() }
	f()
}
`

func TestStaticCalls(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	if got := calleeNames(node(t, g, pkg, "static"), callgraph.Static); len(got) != 1 || got[0] != "target" {
		t.Fatalf("static edges = %v, want [target]", got)
	}
	if got := calleeNames(node(t, g, pkg, "methodCall"), callgraph.Static); len(got) != 1 || got[0] != "M" {
		t.Fatalf("concrete method edges = %v, want [M]", got)
	}
}

func TestFuncValueBinding(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "funcValue")
	if got := calleeNames(n, callgraph.FuncValue); len(got) != 1 || got[0] != "target" {
		t.Fatalf("funcvalue edges = %v, want [target]", got)
	}
	if len(n.Dynamic) != 0 {
		t.Fatalf("resolved binding produced dynamic sites: %v", n.Dynamic)
	}
}

func TestFuncParamIsDynamic(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "funcParam")
	if len(n.Edges) != 0 {
		t.Fatalf("unexpected edges: %v", n.Edges)
	}
	if len(n.Dynamic) != 1 || !strings.Contains(n.Dynamic[0].Desc, "call through func value f") {
		t.Fatalf("dynamic = %v, want one 'call through func value f' site", n.Dynamic)
	}
}

func TestInterfaceCHA(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "viaInterface")
	if got := calleeNames(n, callgraph.Interface); len(got) != 1 || got[0] != "M" {
		t.Fatalf("interface edges = %v, want [M]", got)
	}
	if len(n.Dynamic) != 0 {
		t.Fatalf("CHA-resolved call produced dynamic sites: %v", n.Dynamic)
	}
}

func TestInterfaceNoImplIsDynamic(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "noImpl")
	if len(n.Edges) != 0 {
		t.Fatalf("unexpected edges: %v", n.Edges)
	}
	if len(n.Dynamic) != 1 || !strings.Contains(n.Dynamic[0].Desc, "interface call (J).N with no visible implementation") {
		t.Fatalf("dynamic = %v, want one no-visible-implementation site", n.Dynamic)
	}
}

func TestPackageLevelFuncVarIsDynamic(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "viaHook")
	if len(n.Dynamic) != 1 || !strings.Contains(n.Dynamic[0].Desc, "package-level function variable Hook") {
		t.Fatalf("dynamic = %v, want one package-level-variable site", n.Dynamic)
	}
}

// TestFuncLitAttribution pins the closure policy: a literal's body counts
// against the enclosing declaration, and calling a lit-bound variable is
// neither an edge nor a dynamic site.
func TestFuncLitAttribution(t *testing.T) {
	g, pkg := buildGraph(t, graphSrc)
	n := node(t, g, pkg, "literal")
	if got := calleeNames(n, callgraph.Static); len(got) != 1 || got[0] != "target" {
		t.Fatalf("literal body edges = %v, want [target] attributed to encloser", got)
	}
	if len(n.Dynamic) != 0 {
		t.Fatalf("lit-bound call produced dynamic sites: %v", n.Dynamic)
	}
}

// TestDeterministicNodeOrder pins declaration order, which downstream
// fixpoints and diagnostics rely on.
func TestDeterministicNodeOrder(t *testing.T) {
	g, _ := buildGraph(t, "package p\n\nfunc b() {}\nfunc a() { b() }\nfunc c() { a() }\n")
	var order []string
	for _, n := range g.Nodes {
		order = append(order, n.Func.Name())
	}
	if strings.Join(order, ",") != "b,a,c" {
		t.Fatalf("node order = %v, want declaration order [b a c]", order)
	}
}
