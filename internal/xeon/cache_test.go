package xeon

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterInsert(t *testing.T) {
	c := newCache(1024, 64, 4) // 16 lines, 4 sets
	if c.lookup(5) {
		t.Fatal("hit in empty cache")
	}
	c.insert(5)
	if !c.lookup(5) {
		t.Fatal("miss after insert")
	}
	if c.hits != 1 || c.misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.hits, c.misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4*64, 64, 4) // one set of 4 ways
	for line := int64(0); line < 4; line++ {
		c.insert(line * 1) // all map to set 0 (sets=1)
	}
	c.lookup(0) // refresh line 0 -> line 1 is now LRU
	c.insert(100)
	if !c.contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.contains(1) {
		t.Fatal("LRU line survived")
	}
	if !c.contains(100) {
		t.Fatal("inserted line absent")
	}
}

func TestCacheInsertExistingRefreshes(t *testing.T) {
	c := newCache(4*64, 64, 4)
	for line := int64(0); line < 4; line++ {
		c.insert(line)
	}
	c.insert(0) // refresh, not duplicate
	c.insert(50)
	if c.contains(1) {
		t.Fatal("line 1 should be the eviction victim")
	}
	if !c.contains(0) {
		t.Fatal("refreshed line evicted")
	}
	// No duplicates: resident count equals capacity.
	if c.resident() != 4 {
		t.Fatalf("resident = %d", c.resident())
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := newCache(2*2*64, 64, 2) // 2 sets x 2 ways
	// Lines 0,2,4,6 map to set 0; lines 1,3 to set 1.
	c.insert(0)
	c.insert(2)
	c.insert(4) // evicts 0 from set 0
	if c.contains(0) {
		t.Fatal("set-0 eviction missing")
	}
	c.insert(1)
	if !c.contains(1) || !c.contains(2) || !c.contains(4) {
		t.Fatal("set isolation broken")
	}
}

func TestCacheNegativeLineSafety(t *testing.T) {
	c := newCache(1024, 64, 4)
	c.insert(-7) // must not panic; -7 mod sets handled
	if !c.contains(-7) {
		t.Fatal("negative line lost")
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and a just-inserted line is always resident.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(lines []int16) bool {
		c := newCache(8*64, 64, 2) // 8 lines
		for _, l := range lines {
			c.insert(int64(l))
			if !c.contains(int64(l)) {
				return false
			}
			if c.resident() > c.lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
