// Package xeon models the paper's CPU comparison platforms: a dual-socket
// Sandy Bridge Xeon E5-2670 (STREAM and pointer chasing) and a four-socket
// Haswell Xeon E7-4850 v3 (SpMV). The model is the cache-architecture
// counterpoint to the Emu machine model: set-associative L2/L3 caches with
// 64-byte lines, a stream prefetcher, and DRAM channels with open-row
// (8 KiB page) bank state. These are precisely the mechanisms behind the
// Xeon behaviours the paper reports — full-line transfers for 16-byte
// elements, a performance sweet spot at one-DRAM-page blocks, and
// near-nominal STREAM bandwidth.
package xeon

import (
	"fmt"

	"emuchick/internal/sim"
)

// Config describes one CPU platform.
type Config struct {
	Name string

	// Cores.
	Cores          int   // physical cores
	ThreadsPerCore int   // hardware threads per core (SMT)
	CoreHz         int64 // core clock

	// Cache hierarchy: a private per-core L2 and a shared L3.
	LineBytes int
	L2Bytes   int
	L2Assoc   int
	L2Latency sim.Time
	L3Bytes   int
	L3Assoc   int
	L3Latency sim.Time

	// DRAM.
	Channels           int
	ChannelBytesPerSec float64
	RowBytes           int // DRAM page size; the paper leans on 8 KiB
	BanksPerChannel    int
	RowHitLatency      sim.Time
	RowMissLatency     sim.Time

	// Stream prefetcher: lines fetched ahead once a sequential stream is
	// detected. Zero disables prefetching.
	PrefetchDegree int

	// Runtime.
	SpawnOverhead sim.Time // cilk_spawn cost (parent charge and child start delay)
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.ThreadsPerCore <= 0:
		return fmt.Errorf("xeon: config %q: core counts must be positive", c.Name)
	case c.CoreHz <= 0:
		return fmt.Errorf("xeon: config %q: CoreHz must be positive", c.Name)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("xeon: config %q: LineBytes must be a positive power of two", c.Name)
	case c.L2Bytes <= 0 || c.L2Assoc <= 0 || c.L3Bytes <= 0 || c.L3Assoc <= 0:
		return fmt.Errorf("xeon: config %q: cache geometry must be positive", c.Name)
	case c.L2Bytes%(c.LineBytes*c.L2Assoc) != 0:
		return fmt.Errorf("xeon: config %q: L2 size not divisible into sets", c.Name)
	case c.L3Bytes%(c.LineBytes*c.L3Assoc) != 0:
		return fmt.Errorf("xeon: config %q: L3 size not divisible into sets", c.Name)
	case c.Channels <= 0 || c.ChannelBytesPerSec <= 0:
		return fmt.Errorf("xeon: config %q: DRAM channels must be positive", c.Name)
	case c.RowBytes < c.LineBytes:
		return fmt.Errorf("xeon: config %q: RowBytes smaller than a line", c.Name)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("xeon: config %q: BanksPerChannel must be positive", c.Name)
	case c.RowHitLatency <= 0 || c.RowMissLatency < c.RowHitLatency:
		return fmt.Errorf("xeon: config %q: row latencies inconsistent", c.Name)
	case c.PrefetchDegree < 0:
		return fmt.Errorf("xeon: config %q: negative prefetch degree", c.Name)
	case c.SpawnOverhead < 0:
		return fmt.Errorf("xeon: config %q: negative spawn overhead", c.Name)
	}
	return nil
}

// HardwareThreads reports the total hardware thread slots.
func (c Config) HardwareThreads() int { return c.Cores * c.ThreadsPerCore }

// PeakMemoryBytesPerSec reports the nominal peak memory bandwidth — for
// the Sandy Bridge configuration this is the paper's 51.2 GB/s.
func (c Config) PeakMemoryBytesPerSec() float64 {
	return float64(c.Channels) * c.ChannelBytesPerSec
}

// SandyBridgeXeon returns the dual-socket E5-2670 used for STREAM and
// pointer chasing: 16 cores / 32 threads at 2.6 GHz, a 2x20 MiB shared L3
// (modelled as one 40 MiB cache), and four DDR3-1600 channels totalling
// 51.2 GB/s.
func SandyBridgeXeon() Config {
	return Config{
		Name:               "xeon-e5-2670-sandybridge",
		Cores:              16,
		ThreadsPerCore:     2,
		CoreHz:             2.6e9,
		LineBytes:          64,
		L2Bytes:            256 << 10,
		L2Assoc:            8,
		L2Latency:          4 * sim.Nanosecond,
		L3Bytes:            20 << 20, // per-socket capacity; a thread caches in its own socket
		L3Assoc:            16,
		L3Latency:          13 * sim.Nanosecond,
		Channels:           4,
		ChannelBytesPerSec: 12.8e9,
		RowBytes:           8 << 10,
		BanksPerChannel:    8,
		RowHitLatency:      50 * sim.Nanosecond,
		RowMissLatency:     95 * sim.Nanosecond,
		PrefetchDegree:     8,
		SpawnOverhead:      1 * sim.Microsecond,
	}
}

// HaswellXeon returns the four-socket E7-4850 v3 used for SpMV: 56 cores at
// 2.2 GHz, 4x35 MiB L3, and buffered DDR4 at 1333 MT/s giving 85 GB/s of
// nominal bandwidth per socket. NUMA is flattened (the paper interleaves
// with numactl), so the model exposes one uniform memory system.
func HaswellXeon() Config {
	return Config{
		Name:               "xeon-e7-4850v3-haswell",
		Cores:              56,
		ThreadsPerCore:     2,
		CoreHz:             2.2e9,
		LineBytes:          64,
		L2Bytes:            256 << 10,
		L2Assoc:            8,
		L2Latency:          4 * sim.Nanosecond,
		L3Bytes:            35 << 20, // per-socket capacity
		L3Assoc:            20,
		L3Latency:          15 * sim.Nanosecond,
		Channels:           32,
		ChannelBytesPerSec: 10.6e9,
		RowBytes:           8 << 10,
		BanksPerChannel:    16,
		RowHitLatency:      60 * sim.Nanosecond,
		RowMissLatency:     110 * sim.Nanosecond,
		PrefetchDegree:     8,
		SpawnOverhead:      1 * sim.Microsecond,
	}
}
