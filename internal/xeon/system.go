package xeon

import (
	"fmt"

	"emuchick/internal/sim"
)

// System is one simulated CPU platform: cores with private L2s, a shared
// L3, a DRAM controller, and a Cilk-like runtime (Spawn/Sync) whose workers
// are placed round-robin over hardware threads. Like machine.System it is
// single-use.
type System struct {
	Cfg Config
	Eng *sim.Engine

	clock sim.Clock
	cores []*sim.Resource // per-core issue/execute port
	l2    []*cache        // per-core private L2
	l3    *cache          // shared L3
	mem   *dram

	nextHW  int   // round-robin hardware-thread placement cursor
	nextMem int64 // bump allocator for model addresses

	// prefetchReady holds the DRAM completion time of lines that were
	// prefetched into the caches but whose transfer may still be in
	// flight; a demand hit on such a line waits for it.
	prefetchReady map[int64]sim.Time

	DRAMLines      uint64 // lines fetched from memory (fills + prefetches)
	WritebackLines uint64 // dirty lines written back to memory
	NTWriteLines   uint64 // lines written by non-temporal stores
}

// NewSystem builds a CPU platform from the configuration, panicking on an
// invalid one.
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		Cfg:           cfg,
		Eng:           sim.NewEngineSized(cfg.HardwareThreads()*2 + 64),
		clock:         sim.NewClock(cfg.CoreHz),
		cores:         make([]*sim.Resource, cfg.Cores),
		l2:            make([]*cache, cfg.Cores),
		l3:            newCache(cfg.L3Bytes, cfg.LineBytes, cfg.L3Assoc),
		mem:           newDRAM(&cfg),
		prefetchReady: make(map[int64]sim.Time),
	}
	for i := range s.cores {
		s.cores[i] = sim.NewResource(fmt.Sprintf("core%d", i))
		s.l2[i] = newCache(cfg.L2Bytes, cfg.LineBytes, cfg.L2Assoc)
	}
	return s
}

// Alloc reserves bytes of model address space, aligned to a cache line,
// and returns the base address. The addresses drive the timing model only;
// kernels keep their data in ordinary Go slices.
func (s *System) Alloc(bytes int64) int64 {
	base := s.nextMem
	lb := int64(s.Cfg.LineBytes)
	s.nextMem += (bytes + lb - 1) / lb * lb
	return base
}

// RowHitRatio reports the fraction of DRAM line fetches that hit an open
// row.
func (s *System) RowHitRatio() float64 {
	total := s.mem.rowHits + s.mem.rowMisses
	if total == 0 {
		return 0
	}
	return float64(s.mem.rowHits) / float64(total)
}

// PeakChannelUtilization reports the busiest DRAM channel's utilization.
func (s *System) PeakChannelUtilization(elapsed sim.Time) float64 {
	return s.mem.busiestUtilization(elapsed)
}

// Run executes root as the first software thread and drives the simulation
// to completion, returning total simulated time.
func (s *System) Run(root func(*CPUThread)) (sim.Time, error) {
	start := s.Eng.Now()
	s.startThread(s.Eng.Now(), root, nil)
	if err := s.Eng.Run(); err != nil {
		return 0, err
	}
	return s.Eng.Now() - start, nil
}

func (s *System) startThread(at sim.Time, body func(*CPUThread), parent *sim.Join) {
	core := (s.nextHW) % s.Cfg.Cores
	s.nextHW = (s.nextHW + 1) % s.Cfg.HardwareThreads()
	s.Eng.GoAt(at, "cpu", func(p *sim.Proc) {
		t := &CPUThread{sys: s, p: p, core: core, wcLine: -1}
		for i := range t.streams {
			t.streams[i] = -2 // no stream tracks line -2 or -1
		}
		body(t)
		if t.children != nil {
			t.children.Wait(p)
		}
		if parent != nil {
			parent.Done()
		}
	})
}

// streamTableSize is how many concurrent sequential streams the per-thread
// prefetcher tracks — real L2 prefetchers track several, which matters for
// kernels like STREAM that interleave accesses to multiple arrays.
const streamTableSize = 4

// CPUThread is one software thread of the Cilk runtime, pinned to a core.
type CPUThread struct {
	sys      *System
	p        *sim.Proc
	core     int
	children *sim.Join

	// Stream-prefetcher state (per hardware context): last line and run
	// length of each tracked stream, plus a round-robin victim cursor.
	streams [streamTableSize]int64
	runs    [streamTableSize]int
	victim  int

	// wcLine is the line held by the non-temporal write-combining buffer.
	wcLine int64
}

// Core reports the core the thread is pinned to.
func (t *CPUThread) Core() int { return t.core }

// Now reports the current simulated time.
func (t *CPUThread) Now() sim.Time { return t.p.Now() }

// System returns the platform the thread runs on.
func (t *CPUThread) System() *System { return t.sys }

// Compute charges cycles of execution on the thread's core.
func (t *CPUThread) Compute(cycles int64) {
	if cycles <= 0 {
		return
	}
	_, done := t.sys.cores[t.core].Acquire(t.p.Now(), t.sys.clock.Cycles(cycles))
	t.p.WaitUntil(done)
}

// Read models a blocking load of bytes at addr, walking the cache
// hierarchy per covered line.
func (t *CPUThread) Read(addr, bytes int64) { t.access(addr, bytes, false) }

// Write models a store of bytes at addr with write-allocate semantics: the
// line is fetched like a read, marked dirty, and written back to memory
// when eventually evicted (consuming channel bandwidth asynchronously).
func (t *CPUThread) Write(addr, bytes int64) { t.access(addr, bytes, true) }

// WriteNT models a non-temporal (streaming) store: it bypasses the caches
// through a per-thread write-combining buffer, booking one full-line DRAM
// write each time the store stream enters a new line. Tuned STREAM kernels
// use it for the destination array. The thread does not stall.
//
// Only the span's first line can already sit in the write-combining buffer
// (each later line differs from its predecessor by construction), so the
// per-line buffer check of the old loop reduces to one comparison and the
// rest of the span books as a single bulk run per DRAM channel.
//
//emu:hotpath streaming stores book whole line runs in one call
func (t *CPUThread) WriteNT(addr, bytes int64) {
	if bytes <= 0 {
		return
	}
	s := t.sys
	lb := int64(s.Cfg.LineBytes)
	first := addr / lb
	last := (addr + bytes - 1) / lb
	if first == t.wcLine {
		first++ // combines into the open write-combining buffer
	}
	if first > last {
		return
	}
	t.wcLine = last
	s.mem.writebackRun(t.p.Now(), first, last)
	s.NTWriteLines += uint64(last - first + 1)
}

func (t *CPUThread) access(addr, bytes int64, write bool) {
	if bytes <= 0 {
		return
	}
	s := t.sys
	lb := int64(s.Cfg.LineBytes)
	first := addr / lb
	last := (addr + bytes - 1) / lb
	finish := t.p.Now()
	for line := first; line <= last; line++ {
		if done := t.lineAccess(line, write); done > finish {
			finish = done
		}
	}
	t.p.WaitUntil(finish)
}

// insertL3 fills a line into the shared L3, writing back the dirty victim.
func (s *System) insertL3(now sim.Time, line int64) {
	if ev, dirty := s.l3.insert(line); dirty {
		s.mem.writeback(now, ev)
		s.WritebackLines++
	}
}

// insertL2 fills a line into a core's L2; a dirty victim is absorbed by
// the L3 when present there (marked dirty), otherwise written to memory.
func (s *System) insertL2(now sim.Time, core int, line int64) {
	ev, dirty := s.l2[core].insert(line)
	if !dirty {
		return
	}
	if s.l3.contains(ev) {
		s.l3.markDirty(ev)
		return
	}
	s.mem.writeback(now, ev)
	s.WritebackLines++
}

// lineAccess resolves one line through L2 -> L3 -> DRAM and returns the
// completion time. It also drives the stream prefetcher.
func (t *CPUThread) lineAccess(line int64, write bool) sim.Time {
	s := t.sys
	now := t.p.Now()

	// Stream detection: two sequential line advances on any tracked
	// stream arm the prefetcher, which then runs PrefetchDegree lines
	// ahead into L3.
	if s.Cfg.PrefetchDegree > 0 && t.prefetchArm(line) {
		for ahead := int64(1); ahead <= int64(s.Cfg.PrefetchDegree); ahead++ {
			pl := line + ahead
			if !s.l3.contains(pl) {
				ready := s.mem.fetch(now, pl)
				s.insertL3(now, pl)
				s.prefetchReady[pl] = ready
				s.DRAMLines++
			}
			// The L2 prefetcher pulls the stream into the requesting
			// core's private cache, which is what lets STREAM run at
			// L2 speed.
			s.insertL2(now, t.core, pl)
		}
	}

	// waitReady adds any in-flight prefetch completion to a hit time, so
	// prefetched lines cannot be consumed faster than DRAM delivers them.
	// The empty-map guard keeps prefetch-free kernels (pointer chase) off
	// the hash probe entirely.
	waitReady := func(done sim.Time) sim.Time {
		if len(s.prefetchReady) == 0 {
			return done
		}
		if ready, ok := s.prefetchReady[line]; ok {
			delete(s.prefetchReady, line)
			if ready > done {
				return ready
			}
		}
		return done
	}

	if s.l2[t.core].lookup(line) {
		if write {
			s.l2[t.core].markDirty(line)
		}
		return waitReady(now + s.Cfg.L2Latency)
	}
	if s.l3.lookup(line) {
		s.insertL2(now, t.core, line)
		if write {
			s.l2[t.core].markDirty(line)
		}
		return waitReady(now + s.Cfg.L3Latency)
	}
	done := s.mem.fetch(now, line)
	s.insertL3(now, line)
	s.insertL2(now, t.core, line)
	if write {
		s.l2[t.core].markDirty(line)
	}
	s.DRAMLines++
	return done
}

// prefetchArm feeds one demand line to the stream table and reports
// whether an armed stream should prefetch ahead of it. Re-touching a
// stream's current line is neutral; advancing it by one line extends the
// run; anything else allocates a fresh table entry round-robin.
func (t *CPUThread) prefetchArm(line int64) bool {
	for i := range t.streams {
		switch line {
		case t.streams[i]:
			return false
		case t.streams[i] + 1:
			t.streams[i] = line
			t.runs[i]++
			return t.runs[i] >= 2
		}
	}
	t.streams[t.victim] = line
	t.runs[t.victim] = 0
	t.victim = (t.victim + 1) % streamTableSize
	return false
}

// Spawn creates a child thread (cilk_spawn): the parent is charged the
// runtime's spawn overhead and the child begins after the same overhead on
// the next hardware thread slot.
func (t *CPUThread) Spawn(fn func(*CPUThread)) {
	s := t.sys
	if s.Cfg.SpawnOverhead > 0 {
		_, done := s.cores[t.core].Acquire(t.p.Now(), s.Cfg.SpawnOverhead)
		t.p.WaitUntil(done)
	}
	if t.children == nil {
		t.children = sim.NewJoin(0)
	}
	t.children.Add(1)
	s.startThread(t.p.Now()+s.Cfg.SpawnOverhead, fn, t.children)
}

// Sync blocks until all children spawned so far have finished (cilk_sync).
func (t *CPUThread) Sync() {
	if t.children == nil || t.children.Pending() == 0 {
		return
	}
	t.children.Wait(t.p)
}
