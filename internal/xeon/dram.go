package xeon

import (
	"fmt"

	"emuchick/internal/sim"
)

// dram models the memory controller: lines interleave across channels,
// each channel has banks with one open row apiece (open-page policy), and
// each line transfer occupies its channel for LineBytes at the channel
// rate. A request to a bank whose open row differs pays the row-miss
// latency and switches the open row — the mechanism behind the paper's
// observation that "an entire DRAM row must be activated for each element
// traversed" under random access.
type dram struct {
	cfg          *Config
	channels     []*sim.Resource
	openRow      [][]int64 // [channel][bank] open row, -1 = closed
	lineTime     sim.Time
	linesPerRow  int64
	rowHits      uint64
	rowMisses    uint64
	linesFetched uint64
}

func newDRAM(cfg *Config) *dram {
	d := &dram{
		cfg:         cfg,
		channels:    make([]*sim.Resource, cfg.Channels),
		openRow:     make([][]int64, cfg.Channels),
		lineTime:    sim.TransferTime(int64(cfg.LineBytes), cfg.ChannelBytesPerSec),
		linesPerRow: int64(cfg.RowBytes / cfg.LineBytes),
	}
	for ch := range d.channels {
		d.channels[ch] = sim.NewResource(fmt.Sprintf("dram.ch%d", ch))
		d.openRow[ch] = make([]int64, cfg.BanksPerChannel)
		for b := range d.openRow[ch] {
			d.openRow[ch][b] = -1
		}
	}
	return d
}

// locate maps a line to its channel, bank, and row: consecutive lines
// interleave across channels (fine-grained interleave, as memory
// controllers do to balance streams), and each channel's consecutive
// lines share a row until the page boundary.
func (d *dram) locate(line int64) (ch, bank int, row int64) {
	ch = int(line % int64(d.cfg.Channels))
	if ch < 0 {
		ch += d.cfg.Channels
	}
	perChannel := line / int64(d.cfg.Channels)
	row = perChannel / d.linesPerRow
	bank = int(row % int64(d.cfg.BanksPerChannel))
	return ch, bank, row
}

// fetch books the transfer of one line arriving at the controller at time
// now and returns its completion time.
func (d *dram) fetch(now sim.Time, line int64) sim.Time {
	ch, bank, row := d.locate(line)
	lat := d.cfg.RowHitLatency
	if d.openRow[ch][bank] != row {
		lat = d.cfg.RowMissLatency
		d.openRow[ch][bank] = row
		d.rowMisses++
	} else {
		d.rowHits++
	}
	d.linesFetched++
	_, served := d.channels[ch].Acquire(now, d.lineTime)
	return served + lat
}

// writeback books the transfer of one dirty line back to memory at time
// now. Nobody waits on a writeback; it only consumes channel bandwidth and
// bank row state.
func (d *dram) writeback(now sim.Time, line int64) {
	ch, bank, row := d.locate(line)
	if d.openRow[ch][bank] != row {
		d.rowMisses++
		d.openRow[ch][bank] = row
	} else {
		d.rowHits++
	}
	d.channels[ch].Acquire(now, d.lineTime)
}

// busiestUtilization reports the highest per-channel utilization over the
// window (a saturation indicator).
func (d *dram) busiestUtilization(elapsed sim.Time) float64 {
	best := 0.0
	for _, ch := range d.channels {
		if u := ch.Utilization(elapsed); u > best {
			best = u
		}
	}
	return best
}
