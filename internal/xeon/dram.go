package xeon

import (
	"fmt"

	"emuchick/internal/sim"
)

// dram models the memory controller: lines interleave across channels,
// each channel has banks with one open row apiece (open-page policy), and
// each line transfer occupies its channel for LineBytes at the channel
// rate. A request to a bank whose open row differs pays the row-miss
// latency and switches the open row — the mechanism behind the paper's
// observation that "an entire DRAM row must be activated for each element
// traversed" under random access.
type dram struct {
	cfg          *Config
	channels     []*sim.Resource
	openRow      [][]int64 // [channel][bank] open row, -1 = closed
	lineTime     sim.Time
	linesPerRow  int64
	rowHits      uint64
	rowMisses    uint64
	linesFetched uint64

	// Power-of-two fast path for locate: when channel count, lines-per-row,
	// and bank count are all powers of two (every realistic geometry), the
	// two divisions and two moduli per access reduce to shifts and masks.
	// pow2 gates the fast path; the slow form remains for odd geometries.
	pow2     bool
	chMask   int64
	chShift  uint
	rowShift uint
	bankMask int64

	// wbCount is per-call scratch for writebackRun's per-channel tally,
	// sized once so bulk writebacks allocate nothing.
	wbCount []int
}

func newDRAM(cfg *Config) *dram {
	d := &dram{
		cfg:         cfg,
		channels:    make([]*sim.Resource, cfg.Channels),
		openRow:     make([][]int64, cfg.Channels),
		lineTime:    sim.TransferTime(int64(cfg.LineBytes), cfg.ChannelBytesPerSec),
		linesPerRow: int64(cfg.RowBytes / cfg.LineBytes),
	}
	for ch := range d.channels {
		d.channels[ch] = sim.NewResource(fmt.Sprintf("dram.ch%d", ch))
		d.openRow[ch] = make([]int64, cfg.BanksPerChannel)
		for b := range d.openRow[ch] {
			d.openRow[ch][b] = -1
		}
	}
	d.wbCount = make([]int, cfg.Channels)
	if isPow2(int64(cfg.Channels)) && isPow2(d.linesPerRow) && isPow2(int64(cfg.BanksPerChannel)) {
		d.pow2 = true
		d.chMask = int64(cfg.Channels - 1)
		d.chShift = log2(int64(cfg.Channels))
		d.rowShift = log2(d.linesPerRow)
		d.bankMask = int64(cfg.BanksPerChannel - 1)
	}
	return d
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// locate maps a line to its channel, bank, and row: consecutive lines
// interleave across channels (fine-grained interleave, as memory
// controllers do to balance streams), and each channel's consecutive
// lines share a row until the page boundary.
//emu:hotpath consulted by every fetch and writeback
func (d *dram) locate(line int64) (ch, bank int, row int64) {
	// Lines come from the bump allocator and are non-negative, so on
	// power-of-two geometries the Euclidean mod/div pairs are mask/shift
	// pairs; the division form stays for odd geometries (and would be the
	// fallback for negative lines, where >> floors but / truncates).
	if d.pow2 && line >= 0 {
		ch = int(line & d.chMask)
		row = line >> d.chShift >> d.rowShift
		bank = int(row & d.bankMask)
		return ch, bank, row
	}
	ch = int(line % int64(d.cfg.Channels))
	if ch < 0 {
		ch += d.cfg.Channels
	}
	perChannel := line / int64(d.cfg.Channels)
	row = perChannel / d.linesPerRow
	bank = int(row % int64(d.cfg.BanksPerChannel))
	return ch, bank, row
}

// fetch books the transfer of one line arriving at the controller at time
// now and returns its completion time.
func (d *dram) fetch(now sim.Time, line int64) sim.Time {
	ch, bank, row := d.locate(line)
	lat := d.cfg.RowHitLatency
	if d.openRow[ch][bank] != row {
		lat = d.cfg.RowMissLatency
		d.openRow[ch][bank] = row
		d.rowMisses++
	} else {
		d.rowHits++
	}
	d.linesFetched++
	_, served := d.channels[ch].Acquire(now, d.lineTime)
	return served + lat
}

// writeback books the transfer of one dirty line back to memory at time
// now. Nobody waits on a writeback; it only consumes channel bandwidth and
// bank row state.
func (d *dram) writeback(now sim.Time, line int64) {
	ch, bank, row := d.locate(line)
	if d.openRow[ch][bank] != row {
		d.rowMisses++
		d.openRow[ch][bank] = row
	} else {
		d.rowHits++
	}
	d.channels[ch].Acquire(now, d.lineTime)
}

// writebackRun books the writeback of the consecutive lines [first, last],
// all arriving at now — the non-temporal store path, where a streaming
// kernel retires a run of full lines without stalling. Bank row state is
// walked line by line (open rows must advance exactly as sequential
// writebacks would), but each channel's transfers are booked with one bulk
// AcquireRun grant, which is exactly equivalent to the per-line Acquire
// calls because every transfer in the run arrives at the same instant with
// the same service time (the channels are independent single-server queues,
// so cross-channel ordering is immaterial).
//
//emu:hotpath the streaming-store fast path; one resource grant per channel per run
func (d *dram) writebackRun(now sim.Time, first, last int64) {
	for ch := range d.wbCount {
		d.wbCount[ch] = 0
	}
	for line := first; line <= last; line++ {
		ch, bank, row := d.locate(line)
		if d.openRow[ch][bank] != row {
			d.rowMisses++
			d.openRow[ch][bank] = row
		} else {
			d.rowHits++
		}
		d.wbCount[ch]++
	}
	for ch, k := range d.wbCount {
		if k > 0 {
			d.channels[ch].AcquireRun(now, d.lineTime, k)
		}
	}
}

// busiestUtilization reports the highest per-channel utilization over the
// window (a saturation indicator).
func (d *dram) busiestUtilization(elapsed sim.Time) float64 {
	best := 0.0
	for _, ch := range d.channels {
		if u := ch.Utilization(elapsed); u > best {
			best = u
		}
	}
	return best
}
