package xeon

import (
	"testing"

	"emuchick/internal/sim"
)

func TestDRAMRowHitVsMiss(t *testing.T) {
	cfg := SandyBridgeXeon()
	d := newDRAM(&cfg)
	// First touch of a row is a miss.
	done1 := d.fetch(0, 0)
	if d.rowMisses != 1 || d.rowHits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", d.rowHits, d.rowMisses)
	}
	// The next line on the SAME channel shares the open row: lines
	// interleave across channels, so that is line+Channels.
	done2 := d.fetch(done1, int64(cfg.Channels)) - done1
	if d.rowHits != 1 {
		t.Fatal("same-row access not a hit")
	}
	if done2 >= done1 {
		t.Fatalf("row hit (%v) not faster than cold miss (%v)", done2, done1)
	}
	// A different row on the same channel and bank: miss again.
	linesApart := int64(cfg.Channels) * int64(cfg.RowBytes/cfg.LineBytes) * int64(cfg.BanksPerChannel)
	d.fetch(done1, linesApart)
	if d.rowMisses != 2 {
		t.Fatal("row conflict not a miss")
	}
}

func TestDRAMChannelOccupancy(t *testing.T) {
	cfg := SandyBridgeXeon()
	d := newDRAM(&cfg)
	// Two back-to-back fetches to the same channel (lines interleave
	// across channels, so line 0 and line Channels share channel 0): the
	// second must wait out the first's transfer time.
	d.fetch(0, 0)
	d.fetch(0, int64(cfg.Channels))
	lineTime := sim.TransferTime(int64(cfg.LineBytes), cfg.ChannelBytesPerSec)
	ch := d.channels[0]
	if ch.Ops() != 2 {
		t.Fatalf("channel served %d ops", ch.Ops())
	}
	if ch.TotalWait() != lineTime {
		t.Fatalf("queueing wait %v, want one line time %v", ch.TotalWait(), lineTime)
	}
	if ch.BusyTime() != 2*lineTime {
		t.Fatalf("busy time %v, want %v", ch.BusyTime(), 2*lineTime)
	}
}

func TestDRAMChannelInterleave(t *testing.T) {
	cfg := SandyBridgeXeon()
	d := newDRAM(&cfg)
	// Adjacent lines land on different channels, so they do not queue
	// behind each other.
	a := d.fetch(0, 0)
	b := d.fetch(0, 1)
	if a != b {
		t.Fatalf("independent channels queued: %v vs %v", a, b)
	}
	used := 0
	for _, ch := range d.channels {
		if ch.Ops() > 0 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("fetches used %d channels, want 2", used)
	}
}

func TestBusiestUtilization(t *testing.T) {
	cfg := SandyBridgeXeon()
	d := newDRAM(&cfg)
	d.fetch(0, 0)
	if u := d.busiestUtilization(10 * sim.Nanosecond); u <= 0 {
		t.Fatal("no utilization recorded")
	}
	if u := d.busiestUtilization(0); u != 0 {
		t.Fatalf("empty window utilization = %v", u)
	}
}
