package xeon

// cache is a set-associative cache with true-LRU replacement, keyed by line
// number. It tracks presence only — data is carried functionally by the
// kernels — which is all a timing model needs.
type cache struct {
	sets    int
	setMask int64 // sets-1 when sets is a power of two, else -1
	assoc   int
	tags    []int64  // sets*assoc entries; -1 = invalid
	stamps  []uint64 // LRU timestamps parallel to tags
	dirty   []bool   // parallel to tags
	tick    uint64
	hits    uint64
	misses  uint64
	inserts uint64
}

// newCache builds a cache of the given total size in lines.
func newCache(totalBytes, lineBytes, assoc int) *cache {
	lines := totalBytes / lineBytes
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	c := &cache{
		sets:    sets,
		setMask: -1,
		assoc:   assoc,
		tags:    make([]int64, sets*assoc),
		stamps:  make([]uint64, sets*assoc),
		dirty:   make([]bool, sets*assoc),
	}
	if sets&(sets-1) == 0 {
		c.setMask = int64(sets - 1)
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// setOf maps a line to its set index. Realistic geometries have
// power-of-two set counts, where the Euclidean modulus reduces to a mask
// (valid for negative lines too: two's-complement AND is the positive
// residue); odd set counts fall back to the division form.
//
//emu:hotpath probed once per tag lookup/insert
func (c *cache) setOf(line int64) int {
	if c.setMask >= 0 {
		return int(line & c.setMask)
	}
	s := int(line % int64(c.sets))
	if s < 0 {
		s += c.sets
	}
	return s
}

// lookup probes for line, updating LRU state on a hit. It reports whether
// the line was present.
func (c *cache) lookup(line int64) bool {
	base := c.setOf(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.tick++
			c.stamps[base+w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// contains probes without updating LRU or statistics.
func (c *cache) contains(line int64) bool {
	base := c.setOf(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// markDirty flags a resident line as modified; it is a no-op for lines
// not present.
func (c *cache) markDirty(line int64) {
	base := c.setOf(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.dirty[base+w] = true
			return
		}
	}
}

// insert fills line, evicting the LRU way of its set if needed, and
// reports the evicted line and whether it was dirty (needing writeback).
// Inserting a line that is already present only refreshes its LRU stamp.
func (c *cache) insert(line int64) (evicted int64, wasDirty bool) {
	base := c.setOf(line) * c.assoc
	victim := base
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.tags[i] == line {
			c.tick++
			c.stamps[i] = c.tick
			return -1, false
		}
		if c.tags[i] == -1 {
			victim = i
			break
		}
		if c.stamps[i] < c.stamps[victim] {
			victim = i
		}
	}
	evicted, wasDirty = c.tags[victim], c.dirty[victim]
	c.tick++
	c.tags[victim] = line
	c.stamps[victim] = c.tick
	c.dirty[victim] = false
	c.inserts++
	if evicted == -1 {
		return -1, false
	}
	return evicted, wasDirty
}

// lines reports the cache's capacity in lines.
func (c *cache) lines() int { return c.sets * c.assoc }

// resident counts valid lines (test helper; O(capacity)).
func (c *cache) resident() int {
	n := 0
	for _, t := range c.tags {
		if t != -1 {
			n++
		}
	}
	return n
}
