package xeon

import (
	"strings"
	"testing"

	"emuchick/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{SandyBridgeXeon(), HaswellXeon()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
	bad := SandyBridgeXeon()
	bad.LineBytes = 48 // not a power of two
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "LineBytes") {
		t.Errorf("LineBytes check missing: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.CoreHz = 0 },
		func(c *Config) { c.L2Bytes = 0 },
		func(c *Config) { c.L3Assoc = 0 },
		func(c *Config) { c.L2Bytes = 100 }, // not divisible into sets
		func(c *Config) { c.L3Bytes = 100 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.ChannelBytesPerSec = 0 },
		func(c *Config) { c.RowBytes = 32 }, // smaller than a line
		func(c *Config) { c.BanksPerChannel = 0 },
		func(c *Config) { c.RowHitLatency = 0 },
		func(c *Config) { c.RowHitLatency = 100 * sim.Nanosecond; c.RowMissLatency = 50 * sim.Nanosecond },
		func(c *Config) { c.PrefetchDegree = -1 },
		func(c *Config) { c.SpawnOverhead = -1 },
	}
	for i, mut := range mutations {
		c := SandyBridgeXeon()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSystem with invalid config did not panic")
		}
	}()
	bad2 := SandyBridgeXeon()
	bad2.Cores = 0
	NewSystem(bad2)
}

func TestSystemAccessors(t *testing.T) {
	s := NewSystem(SandyBridgeXeon())
	base := s.Alloc(1 << 12)
	elapsed, err := s.Run(func(th *CPUThread) {
		if th.System() != s {
			t.Error("System() wrong")
		}
		th.Compute(0) // free
		for i := int64(0); i < 32; i++ {
			th.Read(base+i*64, 8)
		}
		th.Sync() // no children: immediate
		th.Read(base, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if u := s.PeakChannelUtilization(elapsed); u <= 0 {
		t.Fatalf("PeakChannelUtilization = %v", u)
	}
	if r := (&System{mem: newDRAM(&s.Cfg)}).RowHitRatio(); r != 0 {
		t.Fatalf("empty RowHitRatio = %v", r)
	}
}

func TestSandyBridgeNominalBandwidth(t *testing.T) {
	// The paper: four channels at 1600 MHz -> 51.2 GB/s peak theoretical.
	if got := SandyBridgeXeon().PeakMemoryBytesPerSec(); got != 51.2e9 {
		t.Fatalf("Sandy Bridge peak = %g, want 51.2e9", got)
	}
	// Haswell: 85 GB/s per socket, 4 sockets.
	got := HaswellXeon().PeakMemoryBytesPerSec()
	if got < 330e9 || got > 350e9 {
		t.Fatalf("Haswell peak = %g, want ~339.2e9", got)
	}
}

func TestAllocAligned(t *testing.T) {
	s := NewSystem(SandyBridgeXeon())
	a := s.Alloc(100)
	b := s.Alloc(1)
	if a%64 != 0 || b%64 != 0 {
		t.Fatal("allocations not line aligned")
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
}

func TestCachedReadFasterThanCold(t *testing.T) {
	s := NewSystem(SandyBridgeXeon())
	base := s.Alloc(64)
	var cold, warm sim.Time
	_, err := s.Run(func(th *CPUThread) {
		t0 := th.Now()
		th.Read(base, 8)
		cold = th.Now() - t0
		t0 = th.Now()
		th.Read(base, 8)
		warm = th.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("cached read (%v) not faster than cold (%v)", warm, cold)
	}
	if warm != s.Cfg.L2Latency {
		t.Fatalf("warm read = %v, want L2 latency %v", warm, s.Cfg.L2Latency)
	}
}

func TestSequentialBeatsRandomViaPrefetch(t *testing.T) {
	const n = 1 << 14 // 16384 lines = 1 MiB
	timeFor := func(pattern func(i int64) int64) sim.Time {
		s := NewSystem(SandyBridgeXeon())
		base := s.Alloc(n * 64)
		elapsed, err := s.Run(func(th *CPUThread) {
			for i := int64(0); i < n; i++ {
				th.Read(base+pattern(i)*64, 8)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	seq := timeFor(func(i int64) int64 { return i })
	// Stride the accesses so lines never repeat and never run
	// sequentially (multiplicative shuffle by an odd constant mod n).
	rnd := timeFor(func(i int64) int64 { return (i * 2654435761) & (n - 1) })
	if seq*2 >= rnd {
		t.Fatalf("prefetcher ineffective: sequential %v vs random %v", seq, rnd)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	s := NewSystem(cfg)
	base := s.Alloc(1 << 20)
	_, err := s.Run(func(th *CPUThread) {
		for i := int64(0); i < 64; i++ {
			th.Read(base+i*64, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the 64 demand lines, no prefetches.
	if s.DRAMLines != 64 {
		t.Fatalf("DRAMLines = %d, want 64", s.DRAMLines)
	}
}

func TestAccessSpanningTwoLines(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	s := NewSystem(cfg)
	base := s.Alloc(128)
	_, err := s.Run(func(th *CPUThread) {
		th.Read(base+60, 8) // crosses the line boundary
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.DRAMLines != 2 {
		t.Fatalf("DRAMLines = %d, want 2", s.DRAMLines)
	}
}

func TestSpawnSyncAndCorePlacement(t *testing.T) {
	s := NewSystem(SandyBridgeXeon())
	cores := map[int]bool{}
	_, err := s.Run(func(th *CPUThread) {
		for i := 0; i < 16; i++ {
			th.Spawn(func(c *CPUThread) {
				cores[c.Core()] = true
				c.Compute(1000)
			})
		}
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Root takes core 0; 16 children must cover many distinct cores.
	if len(cores) < 12 {
		t.Fatalf("children placed on only %d cores", len(cores))
	}
}

func TestComputeParallelSpeedup(t *testing.T) {
	elapsedFor := func(workers int) sim.Time {
		s := NewSystem(SandyBridgeXeon())
		elapsed, err := s.Run(func(th *CPUThread) {
			for w := 0; w < workers; w++ {
				th.Spawn(func(c *CPUThread) { c.Compute(2_600_000) }) // 1 ms each
			}
			th.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	one := elapsedFor(1)
	eight := elapsedFor(8)
	if eight > one*3/2 {
		t.Fatalf("8 workers on 16 cores should run ~concurrently: 1->%v 8->%v", one, eight)
	}
}

func TestWriteWalksHierarchy(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	s := NewSystem(cfg)
	base := s.Alloc(64)
	_, err := s.Run(func(th *CPUThread) {
		th.Write(base, 8)
		t0 := th.Now()
		th.Read(base, 8) // allocated by the write
		if th.Now()-t0 != s.Cfg.L2Latency {
			t.Errorf("read after write not an L2 hit")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	// Tiny caches so evictions happen quickly.
	cfg.L2Bytes = 2 * 64
	cfg.L2Assoc = 1
	cfg.L3Bytes = 4 * 64
	cfg.L3Assoc = 1
	s := NewSystem(cfg)
	base := s.Alloc(1 << 16)
	_, err := s.Run(func(th *CPUThread) {
		// Dirty many distinct lines; they must eventually wash out of
		// the 4-line L3 as writebacks.
		for i := int64(0); i < 64; i++ {
			th.Write(base+i*64, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.WritebackLines == 0 {
		t.Fatal("no writebacks recorded")
	}
	if s.WritebackLines > s.DRAMLines {
		t.Fatalf("writebacks (%d) exceed fetches (%d)", s.WritebackLines, s.DRAMLines)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	cfg.L2Bytes = 2 * 64
	cfg.L2Assoc = 1
	cfg.L3Bytes = 4 * 64
	cfg.L3Assoc = 1
	s := NewSystem(cfg)
	base := s.Alloc(1 << 16)
	_, err := s.Run(func(th *CPUThread) {
		for i := int64(0); i < 64; i++ {
			th.Read(base+i*64, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.WritebackLines != 0 {
		t.Fatalf("clean lines wrote back %d times", s.WritebackLines)
	}
}

func TestXeonDeterminism(t *testing.T) {
	trial := func() (sim.Time, uint64) {
		s := NewSystem(SandyBridgeXeon())
		base := s.Alloc(1 << 16)
		elapsed, err := s.Run(func(th *CPUThread) {
			for w := 0; w < 4; w++ {
				w := w
				th.Spawn(func(c *CPUThread) {
					for i := int64(0); i < 256; i++ {
						c.Read(base+(i*4+int64(w))*64, 16)
					}
				})
			}
			th.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, s.DRAMLines
	}
	e1, d1 := trial()
	e2, d2 := trial()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, d1, e2, d2)
	}
}

func TestRowHitRatioTracksLocality(t *testing.T) {
	cfg := SandyBridgeXeon()
	cfg.PrefetchDegree = 0
	s := NewSystem(cfg)
	base := s.Alloc(8 << 10) // one DRAM row
	_, err := s.Run(func(th *CPUThread) {
		for i := int64(0); i < 128; i++ {
			th.Read(base+i*64, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RowHitRatio(); r < 0.9 {
		t.Fatalf("sequential row-hit ratio = %v", r)
	}
}
