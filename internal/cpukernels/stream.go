// Package cpukernels implements the paper's benchmarks for the Xeon
// comparison platforms: STREAM ADD and pointer chasing on the Sandy Bridge
// model (sections IV-A/IV-B) and the three SpMV baselines — MKL-like,
// cilk_for-like, and grained cilk_spawn — on the Haswell model (IV-C).
// As on the Emu side, every kernel verifies its functional result.
package cpukernels

import (
	"fmt"

	"emuchick/internal/metrics"
	"emuchick/internal/xeon"
)

// StreamConfig parameterizes the CPU STREAM ADD run.
type StreamConfig struct {
	Elements int // array length
	Threads  int
}

// StreamAdd runs c[i] = a[i] + b[i] over 8-byte elements with contiguous
// per-thread partitions — the standard OpenMP/Cilk STREAM decomposition —
// and reports bandwidth at 24 bytes per element.
func StreamAdd(ccfg xeon.Config, cfg StreamConfig) (metrics.Result, error) {
	if cfg.Elements <= 0 || cfg.Threads <= 0 {
		return metrics.Result{}, fmt.Errorf("cpukernels: invalid stream config %+v", cfg)
	}
	sys := xeon.NewSystem(ccfg)
	n := int64(cfg.Elements)
	a := sys.Alloc(n * 8)
	b := sys.Alloc(n * 8)
	c := sys.Alloc(n * 8)

	av := make([]uint64, n)
	bv := make([]uint64, n)
	cv := make([]uint64, n)
	for i := range av {
		av[i] = uint64(i)
		bv[i] = uint64(2 * i)
	}

	var res metrics.Result
	_, err := sys.Run(func(root *xeon.CPUThread) {
		t0 := root.Now()
		spawnTree(root, 0, cfg.Threads, func(th *xeon.CPUThread, w int) {
			lo, hi := share(cfg.Elements, w, cfg.Threads)
			for i := int64(lo); i < int64(hi); i++ {
				th.Read(a+i*8, 8)
				th.Read(b+i*8, 8)
				th.WriteNT(c+i*8, 8) // tuned STREAM streams the destination
				cv[i] = av[i] + bv[i]
				th.Compute(1)
			}
		})
		root.Sync()
		res.Elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, err
	}
	for i := range cv {
		if cv[i] != uint64(3*i) {
			return metrics.Result{}, fmt.Errorf("cpukernels: stream c[%d] = %d", i, cv[i])
		}
	}
	res.Bytes = n * 24
	return res, nil
}

// spawnTree launches one worker per id in [lo, hi) with a recursive binary
// spawn tree (the Cilk loop skeleton), so launching W workers costs
// O(log W) critical-path spawns rather than W.
func spawnTree(t *xeon.CPUThread, lo, hi int, body func(*xeon.CPUThread, int)) {
	switch hi - lo {
	case 0:
		return
	case 1:
		t.Spawn(func(c *xeon.CPUThread) { body(c, lo) })
		return
	}
	mid := lo + (hi-lo)/2
	t.Spawn(func(c *xeon.CPUThread) {
		spawnTree(c, lo, mid, body)
		c.Sync()
	})
	spawnTree(t, mid, hi, body)
}

// share splits n items into parts pieces, mirroring kernels.share.
func share(n, rank, parts int) (lo, hi int) {
	if parts <= 0 {
		return 0, 0
	}
	base := n / parts
	rem := n % parts
	lo = rank*base + minInt(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
