package cpukernels

import (
	"fmt"

	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// GUPSConfig parameterizes the CPU RandomAccess-style kernel, the
// counterpart of kernels.GUPS for the Xeon models.
type GUPSConfig struct {
	TableWords int
	Updates    int
	Threads    int
	Seed       uint64
}

// GUPS performs random read-modify-write updates over a contiguous table.
// On the cache model each out-of-cache update fetches a full 64-byte line
// to touch 8 bytes — the same line-utilization penalty pointer chasing
// exposes, minus the data-dependent serialization.
func GUPS(ccfg xeon.Config, cfg GUPSConfig) (metrics.Result, error) {
	if cfg.TableWords <= 0 || cfg.Updates <= 0 || cfg.Threads <= 0 {
		return metrics.Result{}, fmt.Errorf("cpukernels: invalid GUPS config %+v", cfg)
	}
	sys := xeon.NewSystem(ccfg)
	base := sys.Alloc(int64(cfg.TableWords) * 8)
	stream := workload.GUPSStream(cfg.Updates, cfg.TableWords, workload.NewRNG(cfg.Seed))
	table := make([]uint64, cfg.TableWords)

	want := make([]uint64, cfg.TableWords)
	for _, idx := range stream {
		want[idx]++
	}

	var res metrics.Result
	_, err := sys.Run(func(root *xeon.CPUThread) {
		t0 := root.Now()
		spawnTree(root, 0, cfg.Threads, func(th *xeon.CPUThread, w int) {
			lo, hi := share(cfg.Updates, w, cfg.Threads)
			for j := lo; j < hi; j++ {
				idx := stream[j]
				addr := base + int64(idx)*8
				th.Read(addr, 8)
				table[idx]++ // single functional writer per run; timing below
				th.Write(addr, 8)
				th.Compute(2)
			}
		})
		root.Sync()
		res.Elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, err
	}
	for i := range want {
		if table[i] != want[i] {
			return metrics.Result{}, fmt.Errorf("cpukernels: GUPS slot %d = %d, want %d", i, table[i], want[i])
		}
	}
	res.Bytes = int64(cfg.Updates) * 8
	return res, nil
}
