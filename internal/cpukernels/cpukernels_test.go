package cpukernels

import (
	"testing"
	"testing/quick"

	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

func TestShareTilesProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		parts := int(pRaw%20) + 1
		next := 0
		for r := 0; r < parts; r++ {
			lo, hi := share(n, r, parts)
			if lo != next {
				return false
			}
			next = hi
		}
		return next == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUStreamVerifiesAndApproachesNominal(t *testing.T) {
	res, err := StreamAdd(xeon.SandyBridgeXeon(), StreamConfig{Elements: 1 << 18, Threads: 32})
	if err != nil {
		t.Fatal(err)
	}
	gb := res.GBps()
	// The paper: "close to the nominal bandwidth of 51.2 GB/s".
	if gb < 30 || gb > 52 {
		t.Fatalf("Sandy Bridge STREAM = %.1f GB/s, want near 51.2", gb)
	}
}

func TestCPUStreamThreadScaling(t *testing.T) {
	bw := func(threads int) float64 {
		res, err := StreamAdd(xeon.SandyBridgeXeon(), StreamConfig{Elements: 1 << 14, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBps()
	}
	if one, many := bw(1), bw(16); many <= one {
		t.Fatalf("no scaling: 1->%v 16->%v", one, many)
	}
}

func TestCPUStreamRejectsBadConfig(t *testing.T) {
	for _, cfg := range []StreamConfig{{Elements: 0, Threads: 1}, {Elements: 8, Threads: 0}} {
		if _, err := StreamAdd(xeon.SandyBridgeXeon(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestCPUChaseVerifiesAllModes(t *testing.T) {
	for _, mode := range workload.ShuffleModes {
		if _, err := PointerChase(xeon.SandyBridgeXeon(), ChaseConfig{
			Elements: 2048, BlockSize: 16, Mode: mode, Seed: 5, Threads: 8,
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestCPUChasePageSweetSpot(t *testing.T) {
	// Fig. 7: best performance between 256 and 4096 elements per block
	// (~one 8 KiB DRAM page); both small and much larger blocks are
	// worse.
	bw := func(block int) float64 {
		res, err := PointerChase(xeon.SandyBridgeXeon(), ChaseConfig{
			Elements: 1 << 16, BlockSize: block, Mode: workload.FullBlockShuffle, Seed: 3, Threads: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBps()
	}
	small := bw(4)
	sweet := bw(512) // 8 KiB
	large := bw(16384)
	if sweet <= small {
		t.Fatalf("page-size blocks (%v GB/s) should beat tiny blocks (%v GB/s)", sweet, small)
	}
	if sweet <= large {
		t.Fatalf("page-size blocks (%v GB/s) should beat page-crossing blocks (%v GB/s)", sweet, large)
	}
}

func TestCPUChaseWellBelowStreamPeak(t *testing.T) {
	// Fig. 8's CPU half: random pointer chasing over a list larger than
	// the L3 uses a small fraction of the machine's STREAM bandwidth.
	res, err := PointerChase(xeon.SandyBridgeXeon(), ChaseConfig{
		Elements: 1 << 21, BlockSize: 1, Mode: workload.FullBlockShuffle, Seed: 9, Threads: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.BytesPerSec() / 51.2e9; frac > 0.25 {
		t.Fatalf("random chase at %.0f%% of nominal; paper says <25%%", frac*100)
	}
}

func TestCPUSpMVAllVariantsVerify(t *testing.T) {
	for _, v := range SpMVVariants {
		if _, err := SpMV(xeon.HaswellXeon(), SpMVConfig{
			GridN: 16, Variant: v, Threads: 8, GrainNNZ: 64,
		}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestCPUSpMVVariantNames(t *testing.T) {
	if SpMVMKL.String() != "mkl" || SpMVCilkFor.String() != "cilk_for" || SpMVCilkSpawn.String() != "cilk_spawn" {
		t.Fatal("variant names wrong")
	}
	if SpMVVariant(9).String() == "" {
		t.Fatal("unknown variant empty")
	}
}

func TestCPUSpMVLargeGrainBeatsSmall(t *testing.T) {
	// Section IV-C: "A large grain size of 16,384 for cilk_spawn works
	// best for CPU-based SpMV" — small grains drown in spawn overhead.
	// The matrix must be big enough that the large grain still yields at
	// least one task per core (nnz >= 56 * grain).
	bw := func(grain int) float64 {
		res, err := SpMV(xeon.HaswellXeon(), SpMVConfig{
			GridN: 320, Variant: SpMVCilkSpawn, Threads: 56, GrainNNZ: grain,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	small := bw(16)
	large := bw(8192)
	if large <= small {
		t.Fatalf("grain 8192 (%v MB/s) should beat grain 16 (%v MB/s) on the CPU", large, small)
	}
}

func TestCPUSpMVScalesWithMatrixSize(t *testing.T) {
	bw := func(n int) float64 {
		res, err := SpMV(xeon.HaswellXeon(), SpMVConfig{GridN: n, Variant: SpMVMKL, Threads: 56})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	if small, big := bw(8), bw(48); big <= small {
		t.Fatalf("MKL bandwidth should grow with n: %v -> %v", small, big)
	}
}

func TestCPUGUPSVerifies(t *testing.T) {
	res, err := GUPS(xeon.SandyBridgeXeon(), GUPSConfig{
		TableWords: 1 << 12, Updates: 1 << 12, Threads: 16, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 8<<12 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestCPUGUPSWastesLinesOutOfCache(t *testing.T) {
	// Out-of-cache random updates use 8 of every 64 fetched bytes, so
	// useful bandwidth stays far below nominal.
	res, err := GUPS(xeon.SandyBridgeXeon(), GUPSConfig{
		TableWords: 1 << 22, Updates: 1 << 15, Threads: 32, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.BytesPerSec() / 51.2e9; frac > 0.2 {
		t.Fatalf("GUPS at %.0f%% of nominal; line waste missing", frac*100)
	}
}

func TestCPUGUPSRejectsBadConfig(t *testing.T) {
	for _, cfg := range []GUPSConfig{
		{TableWords: 0, Updates: 1, Threads: 1},
		{TableWords: 1, Updates: 0, Threads: 1},
		{TableWords: 1, Updates: 1, Threads: 0},
	} {
		if _, err := GUPS(xeon.SandyBridgeXeon(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestCPUSpMVRejectsBadConfig(t *testing.T) {
	bad := []SpMVConfig{
		{GridN: 0, Variant: SpMVMKL, Threads: 1},
		{GridN: 4, Variant: SpMVMKL, Threads: 0},
		{GridN: 4, Variant: SpMVCilkSpawn, Threads: 1, GrainNNZ: 0},
	}
	for _, cfg := range bad {
		if _, err := SpMV(xeon.HaswellXeon(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
