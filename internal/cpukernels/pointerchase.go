package cpukernels

import (
	"fmt"

	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// ChaseConfig parameterizes the CPU pointer-chasing run: the same
// block-shuffled lists as the Emu kernel, laid out contiguously (16 bytes
// per element) in one allocation, split into one chain per thread.
type ChaseConfig struct {
	Elements  int
	BlockSize int
	Mode      workload.ShuffleMode
	Seed      uint64
	Threads   int
}

// ChaseStats exposes the memory-system event counts of a CPU chase run,
// feeding section V-B's proposed comparison metric ("cache misses avoided"
// is the inverse of the overfetch measured here).
type ChaseStats struct {
	DRAMLineBytes  int64 // bytes fetched from memory (64 B per line)
	WritebackBytes int64
}

// PointerChase walks the chains concurrently. Each element visit reads its
// 16 bytes (payload + next pointer); on the cache model that transfers a
// full 64-byte line on a miss — the inefficiency the paper highlights —
// while the traversal order determines line reuse, DRAM row locality, and
// whether the prefetcher can engage.
func PointerChase(ccfg xeon.Config, cfg ChaseConfig) (metrics.Result, error) {
	res, _, err := PointerChaseWithStats(ccfg, cfg)
	return res, err
}

// PointerChaseWithStats is PointerChase plus the run's DRAM traffic.
func PointerChaseWithStats(ccfg xeon.Config, cfg ChaseConfig) (metrics.Result, ChaseStats, error) {
	if cfg.Elements <= 0 || cfg.BlockSize <= 0 || cfg.Threads <= 0 {
		return metrics.Result{}, ChaseStats{}, fmt.Errorf("cpukernels: invalid chase config %+v", cfg)
	}
	sys := xeon.NewSystem(ccfg)
	n := cfg.Elements
	base := sys.Alloc(int64(n) * 16)

	order := workload.ListOrder(n, cfg.BlockSize, cfg.Mode, workload.NewRNG(cfg.Seed))
	payload := make([]uint64, n)
	next := make([]int32, n) // -1 terminates
	starts := make([]int, cfg.Threads)
	expect := make([]uint64, cfg.Threads)
	counts := make([]int, cfg.Threads)
	for k := 0; k < cfg.Threads; k++ {
		lo, hi := share(n, k, cfg.Threads)
		counts[k] = hi - lo
		if lo == hi {
			continue
		}
		starts[k] = order[lo]
		for j := lo; j < hi; j++ {
			p := order[j]
			payload[p] = uint64(p) + 1
			expect[k] += uint64(p) + 1
			if j+1 < hi {
				next[p] = int32(order[j+1])
			} else {
				next[p] = -1
			}
		}
	}

	sums := make([]uint64, cfg.Threads)
	var res metrics.Result
	_, err := sys.Run(func(root *xeon.CPUThread) {
		t0 := root.Now()
		spawnTree(root, 0, cfg.Threads, func(th *xeon.CPUThread, k int) {
			if counts[k] == 0 {
				return
			}
			p := starts[k]
			var sum uint64
			for {
				th.Read(base+int64(p)*16, 16)
				sum += payload[p]
				th.Compute(4)
				if next[p] < 0 {
					break
				}
				p = int(next[p])
			}
			sums[k] = sum
		})
		root.Sync()
		res.Elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, ChaseStats{}, err
	}
	for k := range sums {
		if sums[k] != expect[k] {
			return metrics.Result{}, ChaseStats{}, fmt.Errorf("cpukernels: chase thread %d sum %d, want %d", k, sums[k], expect[k])
		}
	}
	res.Bytes = int64(n) * 16
	stats := ChaseStats{
		DRAMLineBytes:  int64(sys.DRAMLines) * int64(ccfg.LineBytes),
		WritebackBytes: int64(sys.WritebackLines) * int64(ccfg.LineBytes),
	}
	return res, stats, nil
}
