package cpukernels

import (
	"fmt"

	"emuchick/internal/metrics"
	"emuchick/internal/sparse"
	"emuchick/internal/xeon"
)

// SpMVVariant selects one of the three Haswell baselines of Fig. 9b.
type SpMVVariant int

const (
	// SpMVMKL models Intel MKL's tuned CSR kernel: static row partition,
	// tight inner loop, 4-byte column indices.
	SpMVMKL SpMVVariant = iota
	// SpMVCilkFor models a cilk_for row loop: static chunking with a
	// slightly heavier inner loop than MKL.
	SpMVCilkFor
	// SpMVCilkSpawn models the grained cilk_spawn kernel whose
	// performance "depends largely on grain size" — each task of
	// GrainNNZ elements pays the runtime's spawn overhead.
	SpMVCilkSpawn
)

// SpMVVariants lists the three baselines in the paper's order.
var SpMVVariants = []SpMVVariant{SpMVMKL, SpMVCilkFor, SpMVCilkSpawn}

// String returns the paper's label for the variant.
func (v SpMVVariant) String() string {
	switch v {
	case SpMVMKL:
		return "mkl"
	case SpMVCilkFor:
		return "cilk_for"
	case SpMVCilkSpawn:
		return "cilk_spawn"
	default:
		return fmt.Sprintf("SpMVVariant(%d)", int(v))
	}
}

// Per-nonzero compute costs: MKL's kernel is vectorized and tight; the
// Cilk kernels are scalar compiles of the plain loop.
const (
	mklNNZCycles  = 2
	cilkNNZCycles = 4
)

// SpMVConfig parameterizes one CPU SpMV run.
type SpMVConfig struct {
	GridN    int
	Variant  SpMVVariant
	Threads  int // the paper uses 56 (physical cores)
	GrainNNZ int // cilk_spawn only; the paper's best CPU grain is 16384
}

// SpMV multiplies the synthetic Laplacian by a dyadic vector on the CPU
// model, verifies the result, and reports effective bandwidth over the
// paper's useful-byte count.
func SpMV(ccfg xeon.Config, cfg SpMVConfig) (metrics.Result, error) {
	if cfg.GridN <= 0 || cfg.Threads <= 0 {
		return metrics.Result{}, fmt.Errorf("cpukernels: invalid spmv config %+v", cfg)
	}
	if cfg.Variant == SpMVCilkSpawn && cfg.GrainNNZ <= 0 {
		return metrics.Result{}, fmt.Errorf("cpukernels: cilk_spawn needs a positive grain")
	}
	m := sparse.Laplacian2D(cfg.GridN)
	xv := make([]float64, m.Cols)
	for i := range xv {
		xv[i] = 1 + float64(i%7)*0.125
	}
	want := m.MulVec(xv)

	sys := xeon.NewSystem(ccfg)
	// Model addresses. MKL uses 4-byte column indices; the Cilk kernels
	// compile with 8-byte ones.
	idxBytes := int64(8)
	nnzCycles := int64(cilkNNZCycles)
	if cfg.Variant == SpMVMKL {
		idxBytes = 4
		nnzCycles = mklNNZCycles
	}
	nnz := int64(m.NNZ())
	rpA := sys.Alloc(int64(m.Rows+1) * 8)
	ciA := sys.Alloc(nnz * idxBytes)
	vvA := sys.Alloc(nnz * 8)
	xA := sys.Alloc(int64(m.Cols) * 8)
	yA := sys.Alloc(int64(m.Rows) * 8)

	yv := make([]float64, m.Rows)
	rowRange := func(th *xeon.CPUThread, lo, hi int) {
		for r := lo; r < hi; r++ {
			th.Read(rpA+int64(r)*8, 16) // rowptr[r] and rowptr[r+1]
			var sum float64
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				th.Read(ciA+k*idxBytes, idxBytes)
				th.Read(vvA+k*8, 8)
				c := m.ColIdx[k]
				th.Read(xA+c*8, 8)
				sum += m.Val[k] * xv[c]
				th.Compute(nnzCycles)
			}
			th.Write(yA+int64(r)*8, 8)
			yv[r] = sum
			th.Compute(4)
		}
	}

	var res metrics.Result
	_, err := sys.Run(func(root *xeon.CPUThread) {
		t0 := root.Now()
		switch cfg.Variant {
		case SpMVMKL, SpMVCilkFor:
			// Static partition of rows over the worker pool.
			for w := 0; w < cfg.Threads; w++ {
				lo, hi := share(m.Rows, w, cfg.Threads)
				if lo == hi {
					continue
				}
				root.Spawn(func(th *xeon.CPUThread) { rowRange(th, lo, hi) })
			}
			root.Sync()
		case SpMVCilkSpawn:
			// Grained recursive spawn over rows; every task pays the
			// Cilk runtime's spawn cost.
			grainRows := cfg.GrainNNZ / 5
			if grainRows < 1 {
				grainRows = 1
			}
			parFor(root, 0, m.Rows, grainRows, rowRange)
			root.Sync()
		default:
			panic(fmt.Sprintf("cpukernels: unknown variant %v", cfg.Variant))
		}
		res.Elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, err
	}
	for r := range yv {
		if yv[r] != want[r] {
			return metrics.Result{}, fmt.Errorf("cpukernels: spmv y[%d] = %v, want %v", r, yv[r], want[r])
		}
	}
	res.Bytes = m.UsefulBytes()
	return res, nil
}

// parFor recursively splits [lo, hi) into tasks of at most grain rows,
// spawning the left half and recursing on the right, like a Cilk loop
// skeleton built from cilk_spawn.
func parFor(t *xeon.CPUThread, lo, hi, grain int, body func(*xeon.CPUThread, int, int)) {
	if hi-lo <= grain {
		body(t, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	t.Spawn(func(c *xeon.CPUThread) {
		parFor(c, lo, mid, grain, body)
		c.Sync()
	})
	parFor(t, mid, hi, grain, body)
}
