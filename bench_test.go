package emuchick

// One testing.B benchmark per paper artifact. Each runs a representative
// configuration of the corresponding figure or table and reports the
// figure's metric (simulated bandwidth or migration rate) via
// b.ReportMetric, so `go test -bench . -benchmem` regenerates the headline
// number of every artifact; `cmd/emubench` regenerates the full sweeps.

import (
	"runtime"
	"testing"

	"emuchick/internal/cpukernels"
	"emuchick/internal/experiments"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// reportEmu runs an Emu kernel b.N times and reports its simulated
// bandwidth in MB/s.
func reportEmu(b *testing.B, run func() (Result, error)) {
	b.Helper()
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MBps(), "simMB/s")
}

// BenchmarkFig4StreamSingleNodelet is the plateau point of Fig. 4: STREAM
// on one nodelet with 64 threads.
func BenchmarkFig4StreamSingleNodelet(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunStream(HardwareChick(), StreamConfig{
			ElemsPerNodelet: 1024, Nodelets: 1, Threads: 64, Strategy: SerialSpawn,
		})
	})
}

// BenchmarkFig5StreamEightNodelets is Fig. 5's peak: 512 threads with a
// recursive remote spawn tree across 8 nodelets (~1.2 GB/s on hardware).
func BenchmarkFig5StreamEightNodelets(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunStream(HardwareChick(), StreamConfig{
			ElemsPerNodelet: 1024, Nodelets: 8, Threads: 512, Strategy: RecursiveRemoteSpawn,
		})
	})
}

// BenchmarkStreamAnchorXeon is the section IV-A anchor: Sandy Bridge
// STREAM near its nominal 51.2 GB/s.
func BenchmarkStreamAnchorXeon(b *testing.B) {
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := cpukernels.StreamAdd(xeon.SandyBridgeXeon(), cpukernels.StreamConfig{
			Elements: 1 << 18, Threads: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GBps(), "simGB/s")
}

// BenchmarkStreamAnchorEightNodes is the unstable 8-node test (6.5 GB/s in
// the paper's one successful run).
func BenchmarkStreamAnchorEightNodes(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunStream(HardwareChickNodes(8), StreamConfig{
			ElemsPerNodelet: 512, Nodelets: 64, Threads: 4096, Strategy: RecursiveRemoteSpawn,
		})
	})
}

// BenchmarkFig6PointerChaseEmu is Fig. 6's flat region: 512 threads,
// full shuffle, 64-element blocks.
func BenchmarkFig6PointerChaseEmu(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunPointerChase(HardwareChick(), ChaseConfig{
			Elements: 16384, BlockSize: 64, Mode: FullBlockShuffle,
			Seed: 1, Threads: 512, Nodelets: 8,
		})
	})
}

// BenchmarkFig6PointerChaseTraced is the observability-cost probe: the
// same run as BenchmarkFig6PointerChaseEmu with an aggregating observer
// attached. BenchmarkFig6PointerChaseEmu above is the nil-observer guard —
// its ns/op is tracked in BENCH_engine.json and must not regress for the
// emit path to count as free; the delta between the two is what tracing
// actually costs.
func BenchmarkFig6PointerChaseTraced(b *testing.B) {
	agg := NewTraceAggregator(0)
	reportEmu(b, func() (Result, error) {
		return RunPointerChase(HardwareChick(), ChaseConfig{
			Elements: 16384, BlockSize: 64, Mode: FullBlockShuffle,
			Seed: 1, Threads: 512, Nodelets: 8,
		}, WithObserver(agg))
	})
}

// BenchmarkFig6BlockOneDip is Fig. 6's defining dip: every element
// migrates.
func BenchmarkFig6BlockOneDip(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunPointerChase(HardwareChick(), ChaseConfig{
			Elements: 16384, BlockSize: 1, Mode: FullBlockShuffle,
			Seed: 1, Threads: 512, Nodelets: 8,
		})
	})
}

// BenchmarkFig7PointerChaseXeon is Fig. 7's sweet spot: 512-element
// (8 KiB, one DRAM page) blocks on Sandy Bridge.
func BenchmarkFig7PointerChaseXeon(b *testing.B) {
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
			Elements: 1 << 18, BlockSize: 512, Mode: FullBlockShuffle, Seed: 1, Threads: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MBps(), "simMB/s")
}

// BenchmarkFig8Utilization reports Fig. 8's headline: the Emu's
// pointer-chase bandwidth as a fraction of its measured STREAM peak.
func BenchmarkFig8Utilization(b *testing.B) {
	peak, err := RunStream(HardwareChick(), StreamConfig{
		ElemsPerNodelet: 2048, Nodelets: 8, Threads: 512, Strategy: RecursiveRemoteSpawn,
	})
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := RunPointerChase(HardwareChick(), ChaseConfig{
			Elements: 16384, BlockSize: 64, Mode: FullBlockShuffle,
			Seed: 1, Threads: 512, Nodelets: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		frac = res.BytesPerSec() / peak.BytesPerSec()
	}
	b.ReportMetric(frac*100, "%ofpeak")
}

// BenchmarkFig9aSpMVEmu is Fig. 9a's best case: the 2D layout at n=100.
func BenchmarkFig9aSpMVEmu(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunSpMV(HardwareChick(), SpMVConfig{GridN: 100, Layout: SpMV2D, GrainNNZ: 16})
	})
}

// BenchmarkFig9aSpMVEmu1D and ...Local are the other two layout curves.
func BenchmarkFig9aSpMVEmu1D(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunSpMV(HardwareChick(), SpMVConfig{GridN: 100, Layout: SpMV1D, GrainNNZ: 16})
	})
}

func BenchmarkFig9aSpMVEmuLocal(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunSpMV(HardwareChick(), SpMVConfig{GridN: 100, Layout: SpMVLocal, GrainNNZ: 16})
	})
}

// BenchmarkFig9bSpMVXeon is Fig. 9b's MKL curve at a mid-size matrix.
func BenchmarkFig9bSpMVXeon(b *testing.B) {
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := cpukernels.SpMV(xeon.HaswellXeon(), cpukernels.SpMVConfig{
			GridN: 100, Variant: cpukernels.SpMVMKL, Threads: 56,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MBps(), "simMB/s")
}

// BenchmarkFig10ValidationGap reports the hardware/simulator bandwidth
// ratio on the migration-bound chase point — the Fig. 10 mismatch.
func BenchmarkFig10ValidationGap(b *testing.B) {
	cfg := ChaseConfig{
		Elements: 16384, BlockSize: 1, Mode: FullBlockShuffle,
		Seed: 1, Threads: 512, Nodelets: 8,
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		hw, err := RunPointerChase(HardwareChick(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm, err := RunPointerChase(SimMatched(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sm.BytesPerSec() / hw.BytesPerSec()
	}
	b.ReportMetric(ratio, "sim/hw")
}

// BenchmarkMigrationAnchorPingPong is the section IV-D scalar: hardware
// ping-pong migration rate (paper: ~9 M/s).
func BenchmarkMigrationAnchorPingPong(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := RunPingPong(HardwareChick(), PingPongConfig{
			Threads: 64, Iterations: 500, NodeletA: 0, NodeletB: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.MigrationsPerSec / 1e6
	}
	b.ReportMetric(rate, "Mmig/s")
}

// BenchmarkFig11FullSpeed64 is the Fig. 11 projection: 64 nodelets at
// design speed, thousands of threads.
func BenchmarkFig11FullSpeed64(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunPointerChase(FullSpeed(8), ChaseConfig{
			Elements: 65536, BlockSize: 128, Mode: FullBlockShuffle,
			Seed: 1, Threads: 4096, Nodelets: 64,
		})
	})
}

// --- Extension benchmarks: the application substrates the paper's
// introduction motivates, plus model ablations.

// BenchmarkGraphTraversalClustered walks a STINGER-style graph whose edge
// blocks live on their vertices' nodelets.
func BenchmarkGraphTraversalClustered(b *testing.B) {
	benchGraphTraversal(b, PlaceAtVertex)
}

// BenchmarkGraphTraversalFragmented walks the same graph with blocks
// scattered round-robin — pointer chasing in application form.
func BenchmarkGraphTraversalFragmented(b *testing.B) {
	benchGraphTraversal(b, PlaceRoundRobin)
}

func benchGraphTraversal(b *testing.B, placement Placement) {
	b.Helper()
	var mbps float64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(HardwareChick())
		g, err := NewGraph(sys, GraphConfig{
			Vertices: 1024, EdgesPerBlock: 4, Placement: placement, PoolBlocksPerNodelet: 4096,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := uint64(12345)
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		edges := 0
		for v := 0; v < 1024; v++ {
			for e := 0; e < 8; e++ {
				if err := g.BuildInsert(GraphEdge{Src: v, Dst: next(1024), Weight: 1}); err != nil {
					b.Fatal(err)
				}
				edges++
			}
		}
		elapsed, err := sys.Run(func(root *Thread) {
			SpawnWorkers(root, 8, 128, RecursiveRemoteSpawn, func(th *Thread, id int) {
				for v := id; v < 1024; v += 128 {
					g.WalkTimed(th, v, func(int, uint64) {})
				}
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		mbps = float64(edges*16) / elapsed.Seconds() / 1e6
	}
	b.ReportMetric(mbps, "simMB/s")
}

// BenchmarkGraphBFS runs the level-synchronous BFS over an R-MAT graph —
// the STINGER-style analytics kernel the paper's introduction motivates.
func BenchmarkGraphBFS(b *testing.B) {
	cfg := workload.DefaultRMAT(10, 8) // 1024 vertices, 8192 edges
	edges, err := workload.RMAT(cfg, workload.NewRNG(42))
	if err != nil {
		b.Fatal(err)
	}
	var reached int
	for i := 0; i < b.N; i++ {
		sys := NewSystem(HardwareChick())
		g, err := NewGraph(sys, GraphConfig{
			Vertices: cfg.Vertices(), EdgesPerBlock: 4,
			Placement: PlaceAtVertex, PoolBlocksPerNodelet: len(edges),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			if err := g.BuildInsert(GraphEdge{Src: e.Src, Dst: e.Dst, Weight: 1}); err != nil {
				b.Fatal(err)
			}
		}
		var dist []int64
		if _, err := sys.Run(func(root *Thread) {
			dist = BFS(root, g, 0, 64)
		}); err != nil {
			b.Fatal(err)
		}
		reached = 0
		for _, d := range dist {
			if d >= 0 {
				reached++
			}
		}
	}
	b.ReportMetric(float64(reached), "verticesReached")
}

// BenchmarkTensorTTV2D contracts a sparse tensor under the slice-blocked
// layout (the ParTI motivation).
func BenchmarkTensorTTV2D(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunTTV(HardwareChick(), TTVConfig{
			Dims: [3]int{64, 64, 64}, NNZ: 20000, Seed: 1, Layout: TensorLayout2D, GrainNNZ: 16,
		})
	})
}

// BenchmarkAblationReplicatedX is the smart-migration ablation headline:
// SpMV 2D with the input vector replicated (vs striped in the experiment).
func BenchmarkAblationReplicatedX(b *testing.B) {
	reportEmu(b, func() (Result, error) {
		return RunSpMV(HardwareChick(), SpMVConfig{GridN: 50, Layout: SpMV2D, GrainNNZ: 16})
	})
}

// threadletSleeper is the shared body of every proc in the threadlet-scale
// benchmark: park once until a fixed wake time, then exit. One instance is
// shared by every proc, so the per-proc footprint is exactly the Proc
// struct plus its registry and event-queue slots — the number the <200 B
// hardware-context claim translates to on the continuation engine.
type threadletSleeper struct{ wake sim.Time }

func (s *threadletSleeper) StepProc(p *sim.Proc) {
	if p.SleepUntil(s.wake) {
		return
	}
	p.Exit()
}

// BenchmarkThreadletScale spawns 2^20 continuation procs — the resident
// threadlet population of a 16-chassis full-speed rack — parks every one of
// them, wakes them all, and reports the measured heap bytes per parked proc.
// A goroutine per proc would need gigabytes of stacks; the continuation
// engine must stay within a small constant per proc, and the benchmark
// fails outright if the bound breaks. Wired into `make bench-gate` so the
// per-proc footprint and the end-to-end ns/op are both regression-gated.
func BenchmarkThreadletScale(b *testing.B) {
	const n = 1 << 20
	const maxBytesPerProc = 512
	var perProc float64
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		eng := sim.NewEngineSized(n)
		body := &threadletSleeper{wake: sim.Microsecond}
		for k := 0; k < n; k++ {
			eng.SpawnContAt(0, "t", body)
		}
		if live := eng.LiveProcs(); live != n {
			b.Fatalf("spawned %d procs, %d live", n, live)
		}
		// Measure at the high-water mark: every proc spawned, none finished.
		runtime.ReadMemStats(&after)
		perProc = float64(after.HeapAlloc-before.HeapAlloc) / n
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if live := eng.LiveProcs(); live != 0 {
			b.Fatalf("%d procs still live after Run", live)
		}
		if perProc > maxBytesPerProc {
			b.Fatalf("%.0f heap bytes per parked proc, bound is %d", perProc, maxBytesPerProc)
		}
	}
	b.ReportMetric(perProc, "B/proc")
}

// BenchmarkQuickExperimentSuite runs every registered experiment in quick
// mode — the end-to-end cost of regenerating all artifacts at CI scale.
func BenchmarkQuickExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if _, err := e.Run(experiments.WithScale(experiments.QuickScale), experiments.WithTrials(1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
