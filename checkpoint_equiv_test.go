package emuchick

// The crash-safety contract at the facade level, mirrored from the fault
// layer's golden tests: a run killed mid-sweep and resumed from its
// write-ahead checkpoint produces figures byte-identical to an
// uninterrupted run — at any parallelism, with or without a fault plan —
// and the checkpoint itself adds nothing to a run that completes normally.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emuchick/internal/experiments"
)

// TestCheckpointedFiguresBitIdentical is the identity half: attaching a
// checkpoint to a run that completes must not change its figures, and a
// second run replaying the complete log must reproduce them exactly.
func TestCheckpointedFiguresBitIdentical(t *testing.T) {
	base := figuresJSON(t, "fig4")
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	cold := figuresJSON(t, "fig4", WithCheckpoint(path))
	if !bytes.Equal(base, cold) {
		t.Fatalf("checkpointed run changed the figures:\nbase: %s\nckpt: %s", base, cold)
	}
	warm := figuresJSON(t, "fig4", WithCheckpoint(path))
	if !bytes.Equal(base, warm) {
		t.Fatalf("replayed run changed the figures:\nbase: %s\nwarm: %s", base, warm)
	}
}

// TestKilledRunResumesBitIdentical is the crash half: a checkpoint cut off
// mid-sweep — complete cell records plus a torn final line, exactly what a
// kill mid-append leaves — must resume into figures byte-identical to an
// uninterrupted run, at a different parallelism, with and without a fault
// plan.
func TestKilledRunResumesBitIdentical(t *testing.T) {
	plan, err := ParseFaultPlan("chan=4@2,migstall=10us/100us", 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		id   string
		keep int // complete cell records surviving the "kill"
		opts []experiments.Option
	}{
		{"fig4-plain", "fig4", 3, nil},
		{"fig6-faulted", "fig6", 4, []experiments.Option{WithFaultPlan(plan)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := figuresJSON(t, tc.id, append(tc.opts, WithParallel(8))...)
			path := filepath.Join(t.TempDir(), tc.id+".ckpt")

			// Write the full log sequentially, then cut it down to the
			// header, keep cell records, and a torn partial line.
			figuresJSON(t, tc.id, append(tc.opts, WithCheckpoint(path), WithParallel(1))...)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lines := bytes.SplitAfter(data, []byte("\n"))
			if len(lines) < tc.keep+2 {
				t.Fatalf("log too short to cut: %d lines", len(lines))
			}
			cut := append(bytes.Join(lines[:tc.keep+1], nil), lines[tc.keep+1][:len(lines[tc.keep+1])/2]...)
			if err := os.WriteFile(path, cut, 0o644); err != nil {
				t.Fatal(err)
			}

			// Resume at parallel 8; the figures must match the baseline.
			got := figuresJSON(t, tc.id, append(tc.opts, WithCheckpoint(path), WithParallel(8))...)
			if !bytes.Equal(base, got) {
				t.Fatalf("resumed %s differs from uninterrupted run:\nbase: %s\ngot:  %s", tc.id, base, got)
			}
		})
	}
}

// TestCheckpointRefusesForeignLog pins the fingerprint contract end to end:
// a log written under one workload shape cannot be consumed by another.
func TestCheckpointRefusesForeignLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	figuresJSON(t, "fig4", WithCheckpoint(path))
	e, err := experiments.ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(experiments.WithScale(experiments.QuickScale), experiments.WithTrials(3), WithCheckpoint(path))
	if err == nil {
		t.Fatal("resume under a different trial count was accepted")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected refusal: %v", err)
	}
}
