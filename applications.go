package emuchick

// Application-level substrates built on the machine model — the two
// domains the paper's introduction motivates (streaming graph analysis in
// the style of STINGER, and ParTI-style sparse tensor computation) plus
// the Cilk-reducer accumulation pattern the paper lists as forthcoming
// toolchain work.

import (
	"emuchick/internal/cilk"
	"emuchick/internal/stinger"
	"emuchick/internal/tensor"
)

// Streaming-graph types (see internal/stinger).
type (
	// Graph is a STINGER-style streaming graph: adjacency as chains of
	// fixed-size edge blocks over the global address space.
	Graph = stinger.Graph
	// GraphConfig sizes a Graph and picks its block-placement policy.
	GraphConfig = stinger.Config
	// GraphEdge is one directed weighted edge.
	GraphEdge = stinger.Edge
	// Placement selects where new edge blocks are allocated.
	Placement = stinger.Placement
)

// Edge-block placement policies.
const (
	// PlaceAtVertex keeps a vertex's blocks on its home nodelet.
	PlaceAtVertex = stinger.PlaceAtVertex
	// PlaceRoundRobin scatters blocks (worst-case pool fragmentation).
	PlaceRoundRobin = stinger.PlaceRoundRobin
)

// NewGraph allocates a streaming graph in the system's address space; call
// it before System.Run.
func NewGraph(sys *System, cfg GraphConfig) (*Graph, error) { return stinger.New(sys, cfg) }

// BFS runs the level-synchronous parallel breadth-first search over g from
// src with the given worker count; it must be called inside System.Run.
func BFS(t *Thread, g *Graph, src, workers int) []int64 { return stinger.BFS(t, g, src, workers) }

// Components computes weakly-connected component labels by parallel
// min-label propagation; it must be called inside System.Run.
func Components(t *Thread, g *Graph, workers int) []uint64 {
	return stinger.Components(t, g, workers)
}

// Sparse-tensor types (see internal/tensor).
type (
	// TensorCOO is a 3-mode sparse tensor in coordinate format.
	TensorCOO = tensor.COO
	// TTVConfig parameterizes a tensor-times-vector contraction run.
	TTVConfig = tensor.TTVConfig
	// TensorLayout selects 1D-striped or 2D slice-blocked placement.
	TensorLayout = tensor.Layout
)

// Tensor layouts.
const (
	TensorLayout1D = tensor.Layout1D
	TensorLayout2D = tensor.Layout2D
)

// RunTTV contracts a random tensor's third mode with a vector on a fresh
// machine, verifying against the reference contraction.
func RunTTV(cfg Config, tc TTVConfig) (Result, error) { return tensor.TTVEmu(cfg, tc) }

// MTTKRPConfig parameterizes the CP-ALS bottleneck kernel.
type MTTKRPConfig = tensor.MTTKRPConfig

// RunMTTKRP runs the matricized-tensor-times-Khatri-Rao-product kernel,
// verifying against the host reference.
func RunMTTKRP(cfg Config, mc MTTKRPConfig) (Result, error) { return tensor.MTTKRPEmu(cfg, mc) }

// SumReducer is the migratory-thread analogue of a Cilk sum reducer:
// per-nodelet partials updated with local memory-side atomics.
type SumReducer = cilk.SumReducer

// NewSumReducer allocates one partial-sum cell per nodelet; call it before
// System.Run.
func NewSumReducer(sys *System) *SumReducer { return cilk.NewSumReducer(sys) }
